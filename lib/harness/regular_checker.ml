open Dq_storage

type violation = {
  read : History.op;
  returned_write : History.op option;
  expected_lc : Lc.t;
  reason : string;
}

type report = { reads : int; checked : int; violations : violation list }

(* Does write [w] overlap read [r] in real time? A write without a
   response is concurrent with everything after its invocation. *)
let concurrent (w : History.op) (r : History.op) =
  match r.responded with
  | None -> false (* incomplete reads are not checked *)
  | Some r_end -> (
    w.invoked < r_end
    && match w.responded with None -> true | Some w_end -> w_end > r.invoked)

(* The completed write with the highest logical clock among those that
   responded before the read began. *)
let freshest_completed_before (writes : History.op list) (r : History.op) =
  List.fold_left
    (fun best (w : History.op) ->
      match w.responded, w.lc with
      | Some w_end, Some w_lc when w_end <= r.invoked -> (
        match best with
        | Some (_, best_lc) when Lc.(best_lc >= w_lc) -> best
        | Some _ | None -> Some (w, w_lc))
      | _ -> best)
    None writes

let check_read ~writes ~by_value (r : History.op) =
  let freshest = freshest_completed_before writes r in
  let expected_lc = match freshest with Some (_, lc) -> lc | None -> Lc.zero in
  let fail ?returned_write reason = Some { read = r; returned_write; expected_lc; reason } in
  if r.value = "" then
    (* The initial value: legal iff no write had completed before the
       read began (a concurrent write's pre-state is the initial value
       only in that case too). *)
    match freshest with
    | None -> None
    | Some (w, lc) ->
      fail ~returned_write:w
        (Format.asprintf "read returned the initial value after write lc=%a completed" Lc.pp lc)
  else
    match Hashtbl.find_opt by_value r.value with
    | None -> fail "read returned a value never written to this key"
    | Some (w : History.op) ->
      let is_freshest =
        match freshest, w.lc with
        | Some (fw, _), _ -> fw.id = w.id
        | None, _ -> false
      in
      if is_freshest || concurrent w r then None
      else
        fail ~returned_write:w
          (Format.asprintf
             "stale read: returned write lc=%s but the freshest completed write has lc=%a"
             (match w.lc with Some lc -> Format.asprintf "%a" Lc.pp lc | None -> "?")
             Lc.pp expected_lc)

let check ops =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun (op : History.op) ->
      match op.kind with
      | History.Write ->
        let writes =
          match Hashtbl.find_opt by_key op.key with
          | Some w -> w
          | None ->
            let w = (ref [], Hashtbl.create 64) in
            Hashtbl.add by_key op.key w;
            w
        in
        let list, by_value = writes in
        list := op :: !list;
        Hashtbl.replace by_value op.value op
      | History.Read -> ())
    ops;
  let reads = List.filter (fun (op : History.op) -> op.kind = History.Read) ops in
  let completed =
    List.filter (fun (op : History.op) -> Option.is_some op.responded) reads
  in
  let violations =
    List.filter_map
      (fun r ->
        let writes, by_value =
          match Hashtbl.find_opt by_key r.History.key with
          | Some (list, by_value) -> (!list, by_value)
          | None -> ([], Hashtbl.create 1)
        in
        check_read ~writes ~by_value r)
      completed
  in
  { reads = List.length reads; checked = List.length completed; violations }

let is_regular ops =
  match (check ops).violations with [] -> true | _ :: _ -> false

type inversion = {
  first_read : History.op;
  second_read : History.op;
  first_lc : Lc.t;
  second_lc : Lc.t;
}

let new_old_inversions ops =
  (* Group completed reads by key, sort by response time, and flag any
     later (non-overlapping) read that observed an older logical clock. *)
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun (op : History.op) ->
      match op.kind, op.responded, op.lc with
      | History.Read, Some _, Some _ ->
        let reads =
          match Hashtbl.find_opt by_key op.key with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add by_key op.key r;
            r
        in
        reads := op :: !reads
      | _ -> ())
    ops;
  Hashtbl.fold
    (fun _ reads acc ->
      let sorted =
        List.sort
          (fun (a : History.op) (b : History.op) ->
            Option.compare Float.compare a.responded b.responded)
          !reads
      in
      (* Quadratic pairwise scan; histories are experiment-sized. *)
      let acc = ref acc in
      List.iteri
        (fun i (second : History.op) ->
          List.iteri
            (fun j (first : History.op) ->
              if j < i then
                match first.responded, first.lc, second.lc with
                | Some first_end, Some first_lc, Some second_lc
                  when first_end <= second.invoked && Lc.(second_lc < first_lc) ->
                  acc := { first_read = first; second_read = second; first_lc; second_lc } :: !acc
                | _ -> ())
            sorted)
        sorted;
      !acc)
    by_key []
  (* key-group order is hash order; sort so the report is a function of
     the history alone (R7) *)
  |> List.sort (fun a b ->
         match Int.compare a.first_read.History.id b.first_read.History.id with
         | 0 -> Int.compare a.second_read.History.id b.second_read.History.id
         | c -> c)

let is_atomic ops =
  is_regular ops
  && match new_old_inversions ops with [] -> true | _ :: _ -> false

let pp_report ppf report =
  Format.fprintf ppf "reads=%d checked=%d violations=%d" report.reads report.checked
    (List.length report.violations);
  List.iteri
    (fun i v ->
      if i < 5 then
        Format.fprintf ppf "@,  [%d] op%d on %a at %.1f: %s" i v.read.History.id Key.pp
          v.read.History.key v.read.History.invoked v.reason)
    report.violations

type session_report = { ryw_violations : int; monotonic_violations : int }

let check_sessions ops =
  (* Closed-loop clients issue operations sequentially, so id order is
     session order within a client. *)
  let floors = Hashtbl.create 32 in
  (* (client, key) -> (max own completed write lc, max own read lc) *)
  let ryw = ref 0 and monotonic = ref 0 in
  List.iter
    (fun (op : History.op) ->
      match op.responded, op.lc with
      | Some _, Some lc -> (
        let slot = (op.client, op.key) in
        let write_floor, read_floor =
          Option.value (Hashtbl.find_opt floors slot) ~default:(Lc.zero, Lc.zero)
        in
        match op.kind with
        | History.Write -> Hashtbl.replace floors slot (Lc.max write_floor lc, read_floor)
        | History.Read ->
          if Lc.(lc < write_floor) then incr ryw;
          if Lc.(lc < read_floor) then incr monotonic;
          Hashtbl.replace floors slot (write_floor, Lc.max read_floor lc))
      | _ -> ())
    (List.sort (fun (a : History.op) b -> Int.compare a.id b.id) ops);
  { ryw_violations = !ryw; monotonic_violations = !monotonic }
