module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Spec = Dq_workload.Spec
module Generator = Dq_workload.Generator
module Stats = Dq_util.Stats
module R = Dq_intf.Replication

type config = {
  spec : Spec.t;
  ops_per_client : int;
  warmup_ops : int;
  timeout_ms : float;
  horizon_ms : float;
  redirect_to_up : bool;
  value_pad : int;
}

let default_config spec =
  {
    spec;
    ops_per_client = 200;
    warmup_ops = 10;
    timeout_ms = 30_000.;
    horizon_ms = 3.6e6;
    redirect_to_up = false;
    value_pad = 0;
  }

type result = {
  protocol : string;
  read_latency : Stats.t;
  write_latency : Stats.t;
  all_latency : Stats.t;
  issued : int;
  completed : int;
  failed : int;
  gave_up : int;
  history : History.op list;
  remote_messages : int;
  messages_per_request : float;
  remote_bytes : int;
  bytes_per_request : float;
  elapsed_ms : float;
  throughput_per_s : float; (* completed operations per second *)
}

type event = {
  at_ms : float;
  action : [ `Crash of int | `Recover of int | `Partition of int list list | `Heal ];
}

(* Per-client closed loop state. *)
type client_state = {
  node : int;
  generator : Generator.t;
  mutable done_ops : int;
  mutable finished : bool;
}

let pick_server rng topology ~redirect ~up ~client ~use_closest =
  let closest = Topology.closest_server topology client in
  let preferred =
    if use_closest then closest
    else begin
      let servers = Topology.servers topology in
      let distant = List.filter (fun s -> s <> closest) servers in
      match distant with
      | [] -> closest
      | _ :: _ -> Option.value (Dq_util.Rng.choose rng distant) ~default:closest
    end
  in
  (* Request redirection (paper, Section 2): route to an available front
     end when the preferred one is down. If no server is up the request
     goes to the preferred one and will time out. *)
  if (not redirect) || up preferred then preferred
  else
    match List.filter up (Topology.servers topology) with
    | [] -> preferred
    | alive -> Option.value (Dq_util.Rng.choose rng alive) ~default:preferred

let run_with_events engine topology (api : R.api) config ~events ~on_net_event =
  Spec.validate config.spec;
  let started_at = Engine.now engine in
  let bus = Engine.telemetry engine in
  let subscribed () = Dq_telemetry.Bus.subscribed bus in
  let rng = Engine.split_rng engine in
  let history = History.create () in
  let read_latency = Stats.create () in
  let write_latency = Stats.create () in
  let all_latency = Stats.create () in
  let issued = ref 0 in
  let failed = ref 0 in
  let completed = ref 0 in
  let gave_up = ref 0 in
  let clients =
    List.mapi
      (fun index node ->
        {
          node;
          generator =
            Generator.create ~spec:config.spec ~rng:(Engine.split_rng engine)
              ~client_index:index;
          done_ops = 0;
          finished = false;
        })
      (Topology.clients topology)
  in
  List.iter
    (fun { at_ms; action } ->
      ignore
        (Engine.schedule_at engine ~time:at_ms (fun () ->
             match action with
             | `Crash id -> api.R.crash_server id
             | `Recover id -> api.R.recover_server id
             | `Partition groups -> on_net_event (`Partition groups)
             | `Heal -> on_net_event `Heal)))
    events;
  (* The run loop asks "is everything finished?" before every event, so
     completion is tracked with a counter instead of a per-event walk
     over the client list. *)
  let unfinished = ref (List.length clients) in
  let finish_client client =
    if not client.finished then begin
      client.finished <- true;
      decr unfinished
    end
  in
  (* [chain]: closed-loop clients issue the next operation from the
     completion (or timeout) of the current one; open-loop clients'
     operations are issued by the arrival process instead, and only
     settlement is tracked here. *)
  let rec issue_op client ~chain =
    begin
      let op = Generator.next client.generator in
      let server =
        pick_server rng topology ~redirect:config.redirect_to_up ~up:api.R.server_up
          ~client:client.node ~use_closest:op.Generator.use_closest
      in
      let kind =
        match op.Generator.kind with Generator.Read -> History.Read | Generator.Write -> History.Write
      in
      let start = Engine.now engine in
      let value =
        match kind with
        | History.Write ->
          (* The wire-size model charges [String.length value] per copy,
             so padding the value is how scenarios model large objects. *)
          let base = Printf.sprintf "c%d-%d" client.node !issued in
          if config.value_pad > String.length base then
            base ^ String.make (config.value_pad - String.length base) '.'
          else base
        | History.Read -> ""
      in
      let id =
        History.begin_op history ~client:client.node ~key:op.Generator.key ~kind ~value
          ~now:start
      in
      incr issued;
      let kind_str = match kind with History.Read -> "read" | History.Write -> "write" in
      if subscribed () then
        Dq_telemetry.Bus.emit bus
          (Dq_telemetry.Event.Op_start
             {
               op = id;
               client = client.node;
               kind = kind_str;
               key = Dq_storage.Key.to_string op.Generator.key;
             });
      let settled = ref false in
      let record_latency () =
        if client.done_ops >= config.warmup_ops then begin
          let latency = Engine.now engine -. start in
          Stats.add all_latency latency;
          match kind with
          | History.Read -> Stats.add read_latency latency
          | History.Write -> Stats.add write_latency latency
        end
      in
      let advance () =
        client.done_ops <- client.done_ops + 1;
        if client.done_ops >= config.ops_per_client then finish_client client
        else if chain then begin
          if config.spec.Spec.think_time_ms > 0. then
            ignore
              (Engine.schedule engine ~delay:config.spec.Spec.think_time_ms (fun () ->
                   issue_op client ~chain))
          else issue_op client ~chain
        end
      in
      let on_timeout () =
        if not !settled then begin
          settled := true;
          incr failed;
          if subscribed () then
            Dq_telemetry.Bus.emit bus
              (Dq_telemetry.Event.Op_timeout
                 { op = id; client = client.node; kind = kind_str });
          advance ()
        end
      in
      ignore (Engine.schedule engine ~delay:config.timeout_ms on_timeout);
      (* The protocol explicitly abandoned the operation (bounded
         retransmission exhausted): record it as failed immediately
         rather than leaving it to the timeout, so the history can tell
         "gave up" apart from "still pending". *)
      let on_give_up () =
        History.give_up_op history ~id ~now:(Engine.now engine);
        if subscribed () then
          Dq_telemetry.Bus.emit bus
            (Dq_telemetry.Event.Op_give_up
               { op = id; client = client.node; kind = kind_str });
        if not !settled then begin
          settled := true;
          incr failed;
          incr gave_up;
          advance ()
        end
      in
      let complete ~value ~lc =
        (* A response after the timeout still completes the operation in
           the history (the write may have taken effect), but the client
           has already moved on. *)
        History.complete_op history ~id ~value ~lc ~now:(Engine.now engine);
        if subscribed () then begin
          Dq_telemetry.Bus.emit bus
            (Dq_telemetry.Event.Op_complete
               {
                 op = id;
                 client = client.node;
                 kind = kind_str;
                 start_ms = start;
                 latency_ms = Engine.now engine -. start;
               });
          (* The freshness-carrying twin of [Op_complete]: the served
             version's logical clock, for the AoI sink. *)
          Dq_telemetry.Bus.emit bus
            (Dq_telemetry.Event.Op_served
               {
                 op = id;
                 client = client.node;
                 kind = kind_str;
                 key = Dq_storage.Key.to_string op.Generator.key;
                 lc_count = lc.Dq_storage.Lc.count;
                 lc_node = lc.Dq_storage.Lc.node;
                 start_ms = start;
               })
        end;
        if not !settled then begin
          settled := true;
          incr completed;
          record_latency ();
          advance ()
        end
      in
      match kind with
      | History.Read ->
        api.R.submit_read ~client:client.node ~server ~on_give_up op.Generator.key (fun r ->
            complete ~value:r.R.read_value ~lc:r.R.read_lc)
      | History.Write ->
        api.R.submit_write ~client:client.node ~server ~on_give_up op.Generator.key value
          (fun w -> complete ~value ~lc:w.R.write_lc)
    end
  in
  let start_client client =
    if config.ops_per_client <= 0 then finish_client client
    else
    match config.spec.Spec.arrival with
    | Spec.Closed -> issue_op client ~chain:true
    | Spec.Open { rate_per_s } ->
      let mean_gap_ms = 1000. /. rate_per_s in
      let rec arrivals n =
        if n < config.ops_per_client then begin
          issue_op client ~chain:false;
          let gap = Dq_util.Rng.exponential rng ~mean:mean_gap_ms in
          ignore (Engine.schedule engine ~delay:gap (fun () -> arrivals (n + 1)))
        end
      in
      arrivals 0
  in
  let before_messages = Dq_net.Msg_stats.remote_total (api.R.message_stats ()) in
  let before_bytes = Dq_net.Msg_stats.remote_bytes (api.R.message_stats ()) in
  List.iter start_client clients;
  Engine.run_while engine (fun () ->
      !unfinished > 0 && Engine.now engine <= config.horizon_ms);
  api.R.quiesce ();
  let after_messages = Dq_net.Msg_stats.remote_total (api.R.message_stats ()) in
  let remote_messages = after_messages - before_messages in
  let remote_bytes = Dq_net.Msg_stats.remote_bytes (api.R.message_stats ()) - before_bytes in
  let requests = Stdlib.max 1 !issued in
  {
    protocol = api.R.protocol_name;
    read_latency;
    write_latency;
    all_latency;
    issued = !issued;
    completed = !completed;
    failed = !failed;
    gave_up = !gave_up;
    history = History.ops history;
    remote_messages;
    messages_per_request = float_of_int remote_messages /. float_of_int requests;
    remote_bytes;
    bytes_per_request = float_of_int remote_bytes /. float_of_int requests;
    elapsed_ms = Engine.now engine -. started_at;
    throughput_per_s =
      (let elapsed = Engine.now engine -. started_at in
       if elapsed <= 0. then 0. else float_of_int !completed /. (elapsed /. 1000.));
  }

let run engine topology api config =
  run_with_events engine topology api config ~events:[] ~on_net_event:(fun _ -> ())
