(** Declarative fault orchestration ("nemesis") over any protocol
    instance.

    A nemesis {e program} is a timeline of composable fault actions —
    partition patterns, bounded crash storms, clock-skew bumps,
    per-link degradation, link flapping, lease-expiry-targeted
    partition windows — interpreted against a {!Registry.instance}
    through its message-type-erased network control handle. Programs
    are plain data: derived deterministically from a seed
    ({!generate}), they replay exactly.

    Partition patterns are implemented with {e directed link cuts}
    among the server nodes only, so application clients always reach
    their front end (the paper's edge setting: a server can be severed
    from its peers while still facing clients) and patterns compose
    with one another. [Heal] clears every network fault at once.

    The interpreter records every action it fires (with the virtual
    time at which it actually fired — lease-targeted windows fire when
    the window opens, not when the step was scheduled) in an event log
    that {!phases} turns into per-phase degraded-mode metrics. *)

(** {2 Programs} *)

type pattern =
  | Isolate_one of { node : int; oneway : bool }
      (** sever the links between [node] and every other server;
          [oneway] cuts only the outgoing direction, leaving the node
          able to hear its peers but not reach them *)
  | Majority_minority of { minority : int list }
      (** split the servers into [minority] and the rest *)
  | Bridge of { bridge : int }
      (** split the other servers into two halves that can only
          communicate through [bridge] *)
  | Ring  (** each server reaches only its two ring neighbours *)

type action =
  | Partition of pattern
  | Heal  (** clear all partitions, cuts, link faults and flapping *)
  | Crash_storm of { victims : int list; stagger_ms : float; down_ms : float }
      (** crash [victims] one after another, [stagger_ms] apart; each
          recovers [down_ms] after its crash — the storm is bounded *)
  | Amnesia_storm of { victims : int list; stagger_ms : float; down_ms : float }
      (** like [Crash_storm], but the crash wipes durable state: each
          victim recovers empty and must state-transfer from its peers
          before serving again *)
  | Gray_degrade of { victims : int list; delay_ms : float; loss : float; duration_ms : float }
      (** gray failure: the victims stay up and keep answering, but
          every message they send or receive suffers [delay_ms] extra
          latency and [loss] extra drop probability for
          [duration_ms] *)
  | Skew_bump of { node : int; skew : float }
      (** re-rate the node's clock (continuously — no reading jump);
          the interpreter clamps [skew] inside the protocol's drift
          bound, so lease arithmetic stays sound *)
  | Degrade_link of { src : int; dst : int; faults : Dq_net.Net.fault_model }
      (** override the fault model of one directed link *)
  | Clear_link of { src : int; dst : int }
  | Flap of { src : int; dst : int; up_ms : float; down_ms : float; duration_ms : float }
      (** the directed link alternates up/down for [duration_ms] *)
  | Lease_window of { pattern : pattern; hold_ms : float; max_wait_ms : float }
      (** wait (polling the cluster's OQS lease tables) until some
          currently-valid volume lease is about to expire, then apply
          [pattern] for [hold_ms] so the partition spans the expiry —
          the adversarial window for lease-based protocols. Fires
          unconditionally after [max_wait_ms]; applies immediately on
          protocols without lease introspection. *)

type step = { at_ms : float; action : action }  (** [at_ms]: absolute virtual time *)

type program = step list

val pp_action : Format.formatter -> action -> unit
val pp_program : Format.formatter -> program -> unit

val end_ms : program -> float
(** Virtual time by which every step has fired and every bounded fault
    it started (crash storms, flapping, held windows) has ended. *)

(** {2 Seeded generation} *)

type fault_class =
  | Partitions
  | Crashes
  | Amnesia  (** bounded storms of state-wiping crashes (never node 0) *)
  | Gray_failure  (** per-node gray degradation: slow and lossy, not down *)
  | Degraded_links
  | Flapping
  | Clock_skew
  | Lease_expiry
  | Mixed

val all_classes : fault_class list

val class_name : fault_class -> string

val class_of_name : string -> fault_class option

val generate : Dq_util.Rng.t -> fault_class -> n_servers:int -> program
(** A program of the given fault class for a cluster of [n_servers]
    servers — a pure function of the rng state. Every generated
    program heals itself: it ends with [Heal], all crashed nodes
    recover, and {!end_ms} is well before the fuzz driver's horizon,
    so liveness checks remain meaningful. *)

(** {2 Interpretation} *)

type event = { fired_ms : float; label : string }

val install :
  Dq_sim.Engine.t -> Registry.instance -> servers:int list -> program -> event list ref
(** Schedule the program against the instance. Returns the event log
    (newest first); each fired action appends one event. Call before
    running the driver. *)

(** {2 Per-phase degraded-mode metrics} *)

type phase = {
  label : string;  (** the event that opened the phase; ["initial"] first *)
  from_ms : float;
  until_ms : float;
  p_issued : int;
  p_completed : int;  (** eventually responded, even if after the driver timeout *)
  p_failed : int;     (** never responded and never explicitly gave up *)
  p_gave_up : int;    (** the protocol explicitly abandoned the operation *)
}

val phases : events:event list -> history:History.op list -> phase list
(** Slice the history at each nemesis event: operations are assigned
    to the phase in which they were {e invoked}. *)

val pp_phase : Format.formatter -> phase -> unit
