type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  default : 'k -> 'v;
  mutable buckets : ('k * 'v) list array;
  mutable size : int;
}

let create ~hash ~equal ~default =
  { hash; equal; default; buckets = Array.make 16 []; size = 0 }

let bucket_index t k = t.hash k land (Array.length t.buckets - 1)

let resize t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) [];
  Array.iter
    (fun chain ->
      List.iter
        (fun ((k, _) as entry) ->
          let i = bucket_index t k in
          t.buckets.(i) <- entry :: t.buckets.(i))
        chain)
    old

let find_opt t k =
  let chain = t.buckets.(bucket_index t k) in
  let rec scan = function
    | [] -> None
    | (k', v) :: rest -> if t.equal k k' then Some v else scan rest
  in
  scan chain

let add_new t k v =
  if t.size >= 2 * Array.length t.buckets then resize t;
  let i = bucket_index t k in
  t.buckets.(i) <- (k, v) :: t.buckets.(i);
  t.size <- t.size + 1

(* The replica hot path calls [get] once per request; a direct bucket
   scan keeps the hit case allocation-free (no option box). *)
let get t k =
  let rec scan = function
    | [] ->
      let v = t.default k in
      add_new t k v;
      v
    | (k', v) :: rest -> if t.equal k k' then v else scan rest
  in
  scan t.buckets.(bucket_index t k)

let set t k v =
  let i = bucket_index t k in
  let rec remove = function
    | [] -> None
    | (k', _) :: rest when t.equal k k' -> Some rest
    | entry :: rest -> (
      match remove rest with None -> None | Some r -> Some (entry :: r))
  in
  match remove t.buckets.(i) with
  | Some chain -> t.buckets.(i) <- (k, v) :: chain
  | None -> add_new t k v

let iter t f = Array.iter (fun chain -> List.iter (fun (k, v) -> f k v) chain) t.buckets

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f k v !acc);
  !acc

let clear t =
  t.buckets <- Array.make 16 [];
  t.size <- 0

let length t = t.size

let of_key_default ~default = create ~hash:Key.hash ~equal:Key.equal ~default

let of_int_default ~default =
  create ~hash:(fun (i : int) -> i * 2654435761) ~equal:Int.equal ~default
