(** A bounded single-producer single-consumer queue.

    This is the cross-partition mailbox primitive for the parallel
    simulation: exactly one domain pushes, exactly one domain drains,
    and the drain happens at barrier points where the producer is
    known to be quiescent. {!push} never blocks — a full ring returns
    [false] and the producer must park the item in a local overflow
    structure until the next barrier. FIFO order is preserved. *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy capacity] makes a queue holding at least [capacity]
    items (rounded up to a power of two). [dummy] fills vacated slots
    and is never returned. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Items currently queued. Exact at a barrier; a racing estimate
    otherwise. *)

val push : 'a t -> 'a -> bool
(** Producer side. [false] means the ring is full; the item was not
    enqueued. *)

val drain : 'a t -> ('a -> unit) -> int
(** Consumer side: dequeue everything currently visible, oldest first,
    returning the count. *)

val pop : 'a t -> 'a option
(** Consumer side: dequeue one item. *)
