(** A fixed-size domain-based worker pool with a chunked, order-preserving
    parallel map.

    The pool exists to fan the harness's embarrassingly parallel simulation
    runs across cores: every run owns its own {!Dq_sim.Engine} (and hence
    its own RNG), so runs share no mutable state and the only requirement
    on the pool is that results come back in input order — which makes a
    parallel sweep bit-identical to the serial one.

    A pool with [jobs = n] uses [n - 1] background domains plus the calling
    domain, which participates in every map; [jobs = 1] never spawns a
    domain and degenerates to [List.map]/[Array.map] on the caller. Work is
    handed out as contiguous chunks claimed dynamically from an atomic
    counter, so heterogeneous item costs still balance. *)

type t
(** A worker pool. Not itself thread-safe: drive a given pool from one
    domain at a time (a map issued from inside a running map — e.g. from a
    worker — falls back to a serial map rather than deadlocking). *)

val default_jobs : unit -> int
(** The [DQ_JOBS] environment variable if set (must be a positive
    integer), otherwise {!Domain.recommended_domain_count}. This is the
    default parallelism knob for the whole harness; the bench binary's
    [-j] flag overrides it. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (default
    {!default_jobs}). Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards.
    Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)

val chunk_ranges : n:int -> chunk_size:int -> (int * int) list
(** [chunk_ranges ~n ~chunk_size] partitions indices [0 .. n-1] into
    consecutive [(start, len)] ranges of [chunk_size] elements (the last
    range may be shorter). Every index is covered exactly once; [n = 0]
    yields []. Raises [Invalid_argument] if [n < 0] or [chunk_size < 1]. *)

val map_array : ?chunk_size:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map: [map_array pool f a] equals
    [Array.map f a] element for element. [chunk_size] (default 1) sets
    how many consecutive items a worker claims at a time — leave it at 1
    when each item is a whole simulation run; raise it for fine-grained
    items. If any application of [f] raises, the exception raised by the
    lowest-indexed failing chunk is re-raised on the caller (with its
    backtrace) after all workers have quiesced; the pool remains usable. *)

val map : ?chunk_size:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], parallelised as {!map_array}. *)
