let default_jobs () =
  match Sys.getenv_opt "DQ_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg (Printf.sprintf "DQ_JOBS must be a positive integer, got %S" s))

let chunk_ranges ~n ~chunk_size =
  if n < 0 then invalid_arg "Pool.chunk_ranges: n < 0";
  if chunk_size < 1 then invalid_arg "Pool.chunk_ranges: chunk_size < 1";
  let n_chunks = (n + chunk_size - 1) / chunk_size in
  List.init n_chunks (fun i ->
      let start = i * chunk_size in
      (start, Stdlib.min chunk_size (n - start)))

(* One parallel map in flight. Workers claim chunk indices from [next];
   [completed] (guarded by the pool mutex) counts finished chunks so the
   caller knows when the whole map is done. [run_chunk] never raises —
   errors are recorded per chunk and re-raised by the caller. *)
type task = {
  run_chunk : int -> unit;
  n_chunks : int;
  next : int Atomic.t;
  mutable completed : int;
}

type t = {
  mutex : Mutex.t;
  work : Condition.t; (* a new task was submitted, or shutdown *)
  finished : Condition.t; (* the current task's last chunk completed *)
  mutable task : (int * task) option; (* (generation, task) *)
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  n_jobs : int;
  busy : bool Atomic.t; (* a map is in flight; re-entrant maps go serial *)
}

let jobs t = t.n_jobs

let run_task t task =
  let rec claim () =
    let i = Atomic.fetch_and_add task.next 1 in
    if i < task.n_chunks then begin
      task.run_chunk i;
      Mutex.lock t.mutex;
      task.completed <- task.completed + 1;
      if task.completed = task.n_chunks then Condition.broadcast t.finished;
      Mutex.unlock t.mutex;
      claim ()
    end
  in
  claim ()

(* Each worker remembers the generation it last served so a task is never
   picked up twice by the same worker after its chunks run out. *)
let rec worker_loop t last_gen =
  Mutex.lock t.mutex;
  let rec await () =
    if t.stop then None
    else
      match t.task with
      | Some (gen, task) when gen <> last_gen -> Some (gen, task)
      | _ ->
        Condition.wait t.work t.mutex;
        await ()
  in
  let next = await () in
  Mutex.unlock t.mutex;
  match next with
  | None -> ()
  | Some (gen, task) ->
    run_task t task;
    worker_loop t gen

let create ?jobs () =
  let n_jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n_jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      task = None;
      generation = 0;
      stop = false;
      workers = [];
      n_jobs;
      busy = Atomic.make false;
    }
  in
  t.workers <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_array ?(chunk_size = 1) t f input =
  let n = Array.length input in
  if chunk_size < 1 then invalid_arg "Pool.map_array: chunk_size < 1";
  if n = 0 then [||]
  else if t.n_jobs = 1 || not (Atomic.compare_and_set t.busy false true) then
    Array.map f input
  else begin
    let ranges = Array.of_list (chunk_ranges ~n ~chunk_size) in
    let n_chunks = Array.length ranges in
    let results = Array.make n None in
    let errors = Array.make n_chunks None in
    let run_chunk ci =
      let start, len = ranges.(ci) in
      try
        for i = start to start + len - 1 do
          results.(i) <- Some (f input.(i))
        done
      with e -> errors.(ci) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let task = { run_chunk; n_chunks; next = Atomic.make 0; completed = 0 } in
    Mutex.lock t.mutex;
    t.generation <- t.generation + 1;
    t.task <- Some (t.generation, task);
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    run_task t task;
    Mutex.lock t.mutex;
    while task.completed < task.n_chunks do
      Condition.wait t.finished t.mutex
    done;
    t.task <- None;
    Mutex.unlock t.mutex;
    Atomic.set t.busy false;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?chunk_size t f xs = Array.to_list (map_array ?chunk_size t f (Array.of_list xs))
