(* A bounded single-producer single-consumer ring over a flat array.

   The producer and consumer touch disjoint slot ranges ([head, tail)
   belongs to the consumer, the rest to the producer) and publish their
   progress through the [head]/[tail] atomics, which order the slot
   writes under the OCaml memory model. [push] never blocks: a full
   ring returns [false] and the producer keeps the item in a local
   overflow structure — in the PDES use the consumer only drains at
   barrier points, so waiting for space would deadlock. *)

type 'a t = {
  dummy : 'a; (* fills vacated slots so drained values are not retained *)
  buf : 'a array;
  mask : int;
  head : int Atomic.t; (* consumer position *)
  tail : int Atomic.t; (* producer position *)
}

let create ~dummy capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap =
    let rec up k = if k >= capacity then k else up (k * 2) in
    up 1
  in
  {
    dummy;
    buf = Array.make cap dummy;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = Array.length t.buf

let length t = Atomic.get t.tail - Atomic.get t.head

let push t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head >= Array.length t.buf then false
  else begin
    t.buf.(tail land t.mask) <- x;
    Atomic.set t.tail (tail + 1);
    true
  end

let drain t f =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  for i = head to tail - 1 do
    let j = i land t.mask in
    let x = t.buf.(j) in
    t.buf.(j) <- t.dummy;
    f x
  done;
  if tail <> head then Atomic.set t.head tail;
  tail - head

let pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then None
  else begin
    let j = head land t.mask in
    let x = t.buf.(j) in
    t.buf.(j) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end
