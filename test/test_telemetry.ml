(* The telemetry bus: fan-out, virtual-time stamping, off-path
   determinism (a subscribed sink must not change what the simulation
   computes), the metrics sink, and a golden Chrome trace_event
   document. *)

module Engine = Dq_sim.Engine
module Bus = Dq_telemetry.Bus
module Event = Dq_telemetry.Event
module Metrics = Dq_telemetry.Metrics
module Trace = Dq_telemetry.Trace
module Topology = Dq_net.Topology
module Spec = Dq_workload.Spec
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Stats = Dq_util.Stats

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- bus ----------------------------------------------------------------- *)

let test_unsubscribed_bus () =
  let engine = Engine.create () in
  let bus = Engine.telemetry engine in
  Alcotest.(check bool) "fresh bus has no sinks" false (Bus.subscribed bus);
  (* Emitting into a sink-less bus is a no-op, not an error. *)
  Bus.emit bus (Event.Note { src = "test"; msg = "dropped on the floor" })

let test_fan_out_and_virtual_time () =
  let engine = Engine.create () in
  let bus = Engine.telemetry engine in
  let a = ref [] and b = ref [] in
  Bus.subscribe bus (fun ~time_ms ev -> a := (time_ms, ev) :: !a);
  Bus.subscribe bus (fun ~time_ms ev -> b := (time_ms, ev) :: !b);
  Alcotest.(check bool) "subscribed" true (Bus.subscribed bus);
  ignore
    (Engine.schedule engine ~delay:5. (fun () ->
         Bus.emit bus (Event.Span_begin { name = "x"; node = 0 })));
  ignore
    (Engine.schedule engine ~delay:12.5 (fun () ->
         Bus.emit bus (Event.Span_end { name = "x"; node = 0 })));
  Engine.run engine;
  let a = List.rev !a and b = List.rev !b in
  Alcotest.(check int) "first sink saw both events" 2 (List.length a);
  Alcotest.(check bool) "second sink saw the same stream" true (a = b);
  Alcotest.(check (list (float 1e-9)))
    "events stamped with the virtual clock at emission" [ 5.; 12.5 ] (List.map fst a)

(* A full protocol run publishes a stream whose timestamps never go
   backwards and match the engine clock's range. *)
let test_event_order_matches_virtual_time () =
  let engine = Engine.create ~seed:7L () in
  let times = ref [] in
  let cats = Hashtbl.create 8 in
  Bus.subscribe (Engine.telemetry engine) (fun ~time_ms ev ->
      times := time_ms :: !times;
      Hashtbl.replace cats (Event.cat ev) ());
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let builder = Registry.dqvl () in
  let instance = builder.Registry.build engine topology () in
  let config = { (Driver.default_config Spec.default) with Driver.ops_per_client = 15 } in
  let _result = Driver.run engine topology instance.Registry.api config in
  let times = List.rev !times in
  Alcotest.(check bool) "events were published" true (List.length times > 100);
  let monotone =
    fst
      (List.fold_left
         (fun (ok, prev) t -> (ok && t >= prev, t))
         (true, 0.) times)
  in
  Alcotest.(check bool) "timestamps non-decreasing" true monotone;
  Alcotest.(check bool) "final stamp within the run" true
    (List.fold_left Float.max 0. times <= Engine.now engine);
  List.iter
    (fun cat ->
      Alcotest.(check bool) (cat ^ " events present") true (Hashtbl.mem cats cat))
    [ "msg"; "op"; "lease"; "cache"; "rpc" ]

(* --- off-path determinism ------------------------------------------------- *)

(* The same seed must produce bit-identical results whether or not a
   sink is attached: telemetry only observes, it never draws from the
   RNG or schedules events. *)
let run_dqvl ~subscribe () =
  let engine = Engine.create ~seed:21L () in
  if subscribe then
    Bus.subscribe (Engine.telemetry engine) (fun ~time_ms:_ _ -> ());
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let builder = Registry.dqvl () in
  let instance = builder.Registry.build engine topology () in
  let spec = { Spec.default with Spec.write_ratio = 0.3 } in
  let config = { (Driver.default_config spec) with Driver.ops_per_client = 25 } in
  Driver.run engine topology instance.Registry.api config

let test_sink_does_not_perturb_run () =
  let bare = run_dqvl ~subscribe:false () in
  let observed = run_dqvl ~subscribe:true () in
  Alcotest.(check int) "completed" bare.Driver.completed observed.Driver.completed;
  Alcotest.(check int) "failed" bare.Driver.failed observed.Driver.failed;
  Alcotest.(check int) "remote messages" bare.Driver.remote_messages
    observed.Driver.remote_messages;
  Alcotest.(check int) "remote bytes" bare.Driver.remote_bytes observed.Driver.remote_bytes;
  Alcotest.(check (float 0.)) "elapsed bit-identical" bare.Driver.elapsed_ms
    observed.Driver.elapsed_ms;
  Alcotest.(check (list (float 0.)))
    "latency samples bit-identical"
    (Stats.to_list bare.Driver.all_latency)
    (Stats.to_list observed.Driver.all_latency);
  Alcotest.(check bool) "histories identical" true
    (bare.Driver.history = observed.Driver.history)

(* --- metrics sink --------------------------------------------------------- *)

let test_metrics_by_label () =
  let m = Metrics.create () in
  Metrics.record_msg m ~label:"a" ~local:false ~bytes:10 ();
  Metrics.record_msg m ~label:"a" ~local:true ();
  Metrics.record_msg m ~label:"b" ~local:false ~bytes:5 ();
  Alcotest.(check int) "remote total" 2 (Metrics.remote_total m);
  Alcotest.(check int) "local total" 1 (Metrics.local_total m);
  Alcotest.(check int) "remote bytes" 15 (Metrics.remote_bytes m);
  Alcotest.(check (list (pair string int)))
    "by_label is remote-only by default"
    [ ("a", 1); ("b", 1) ]
    (Metrics.by_label m);
  Alcotest.(check (list (pair string int)))
    "include_local folds in local deliveries"
    [ ("a", 2); ("b", 1) ]
    (Metrics.by_label ~include_local:true m);
  Alcotest.(check (list (pair string int)))
    "local_by_label" [ ("a", 1) ] (Metrics.local_by_label m)

let test_metrics_sink_counts_events () =
  let m = Metrics.create () in
  let sink = Metrics.sink m in
  sink ~time_ms:1. (Event.Msg_sent { src = 0; dst = 1; label = "x"; bytes = 8; local = false });
  sink ~time_ms:2. (Event.Msg_delivered { src = 0; dst = 1; label = "x" });
  sink ~time_ms:3.
    (Event.Op_complete { op = 0; client = 9; kind = "read"; start_ms = 0.; latency_ms = 3. });
  sink ~time_ms:4.
    (Event.Op_complete { op = 1; client = 9; kind = "write"; start_ms = 0.; latency_ms = 4. });
  sink ~time_ms:5. (Event.Fault_injected { label = "boom" });
  Alcotest.(check int) "msg_sent counted" 1 (Metrics.event_count m "msg_sent");
  Alcotest.(check int) "msg_delivered counted" 1 (Metrics.event_count m "msg_delivered");
  Alcotest.(check int) "op_complete counted" 2 (Metrics.event_count m "op_complete");
  Alcotest.(check int) "fault counted" 1 (Metrics.event_count m "fault_injected");
  Alcotest.(check int) "unseen kind is 0" 0 (Metrics.event_count m "node_crash");
  Alcotest.(check int) "msg accounting fed" 1 (Metrics.remote_total m);
  Alcotest.(check int) "read histogram fed" 1
    (Dq_util.Histogram.count (Metrics.read_latency m));
  Alcotest.(check int) "write histogram fed" 1
    (Dq_util.Histogram.count (Metrics.write_latency m));
  let json = Metrics.to_json m in
  Alcotest.(check bool) "json mentions event counts" true
    (contains ~sub:"\"op_complete\"" json)

(* --- golden trace --------------------------------------------------------- *)

let test_trace_golden () =
  let t = Trace.create () in
  Trace.set_process_name t ~pid:3 "golden scenario";
  Trace.record ~pid:3 t ~time_ms:1.5
    (Event.Msg_sent { src = 0; dst = 1; label = "ping"; bytes = 64; local = false });
  Trace.record ~pid:3 t ~time_ms:3.25
    (Event.Op_complete { op = 7; client = 9; kind = "read"; start_ms = 2.; latency_ms = 1.25 });
  Trace.record ~pid:3 t ~time_ms:4.
    (Event.Fault_injected { label = "net.partition/2" });
  Alcotest.(check int) "record count" 4 (Trace.count t);
  let expected =
    "{\"traceEvents\": [\n"
    ^ String.concat ",\n"
        [
          "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,\"args\":{\"name\":\"golden scenario\"}}";
          "  {\"name\":\"send ping\",\"cat\":\"msg\",\"ph\":\"i\",\"ts\":1500,\"pid\":3,\"tid\":0,\"s\":\"t\",\"args\":{\"src\":0,\"dst\":1,\"bytes\":64,\"local\":false}}";
          "  {\"name\":\"read\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":2000,\"dur\":1250,\"pid\":3,\"tid\":9,\"args\":{\"op\":7,\"client\":9,\"latency_ms\":1.25}}";
          "  {\"name\":\"net.partition/2\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":4000,\"pid\":3,\"tid\":-1,\"s\":\"t\",\"args\":{}}";
        ]
    ^ "\n]}\n"
  in
  Alcotest.(check string) "golden trace_event document" expected (Trace.contents t)

let test_trace_escapes_strings () =
  let t = Trace.create () in
  Trace.record t ~time_ms:0.
    (Event.Note { src = "a\"b"; msg = "line1\nline2\\end" });
  Alcotest.(check bool) "quote escaped" true
    (contains ~sub:{|note a\"b|} (Trace.contents t));
  Alcotest.(check bool) "newline escaped" true
    (contains ~sub:{|line1\nline2\\end|} (Trace.contents t))

let () =
  Alcotest.run "telemetry"
    [
      ( "bus",
        [
          Alcotest.test_case "unsubscribed bus is silent" `Quick test_unsubscribed_bus;
          Alcotest.test_case "fan-out + virtual-time stamps" `Quick
            test_fan_out_and_virtual_time;
          Alcotest.test_case "event order matches virtual time" `Quick
            test_event_order_matches_virtual_time;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sink does not perturb the run" `Quick
            test_sink_does_not_perturb_run;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "by_label / include_local" `Quick test_metrics_by_label;
          Alcotest.test_case "sink counts events" `Quick test_metrics_sink_counts_events;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden trace_event JSON" `Quick test_trace_golden;
          Alcotest.test_case "string escaping" `Quick test_trace_escapes_strings;
        ] );
    ]
