module Spsc = Dq_par.Spsc
module Pdes = Dq_sim.Pdes
module Engine = Dq_sim.Engine
module Sites = Dq_harness.Sites

(* {2 SPSC mailbox} *)

let test_spsc_fifo () =
  let q = Spsc.create ~dummy:(-1) 8 in
  for i = 0 to 5 do
    Alcotest.(check bool) "push" true (Spsc.push q i)
  done;
  Alcotest.(check int) "length" 6 (Spsc.length q);
  let out = ref [] in
  let n = Spsc.drain q (fun x -> out := x :: !out) in
  Alcotest.(check int) "drained count" 6 n;
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2; 3; 4; 5 ] (List.rev !out);
  Alcotest.(check int) "empty after drain" 0 (Spsc.length q)

let test_spsc_full_and_wrap () =
  let q = Spsc.create ~dummy:(-1) 3 in
  Alcotest.(check int) "capacity rounded to power of two" 4 (Spsc.capacity q);
  for i = 0 to 3 do
    Alcotest.(check bool) "fill" true (Spsc.push q i)
  done;
  Alcotest.(check bool) "full rejects" false (Spsc.push q 99);
  Alcotest.(check (option int)) "pop" (Some 0) (Spsc.pop q);
  Alcotest.(check bool) "space again" true (Spsc.push q 4);
  let out = ref [] in
  ignore (Spsc.drain q (fun x -> out := x :: !out));
  Alcotest.(check (list int)) "wrap preserves order" [ 1; 2; 3; 4 ] (List.rev !out);
  Alcotest.(check (option int)) "pop empty" None (Spsc.pop q)

(* {2 PDES windows and cross-partition posts} *)

(* These two tests capture refs in post callbacks on purpose: they run
   the PDES without a pool, so everything executes on one domain and
   the R5 cross-domain race cannot occur. *)
let[@dqr.lint.allow "R5"] test_pdes_basic_exchange () =
  let pdes = Pdes.create ~lookahead:10. 2 in
  let log = ref [] in
  (* partition 0 pings partition 1 every 10 ms; partition 1 logs. *)
  let rec ping i =
    if i < 3 then begin
      let eng = Pdes.engine pdes 0 in
      let now = Engine.now eng in
      Pdes.post pdes ~src:0 ~dst:1 ~time:(now +. 10.) (fun () ->
          log := (i, Engine.now (Pdes.engine pdes 1)) :: !log);
      ignore (Engine.schedule eng ~delay:10. (fun () -> ping (i + 1)))
    end
  in
  ignore (Engine.schedule_at (Pdes.engine pdes 0) ~time:1. (fun () -> ping 0));
  Pdes.run pdes;
  let got = List.rev !log in
  Alcotest.(check int) "three pings" 3 (List.length got);
  List.iteri
    (fun i (j, at) ->
      Alcotest.(check int) "order" i j;
      Alcotest.(check (float 1e-9)) "arrival time" (11. +. (10. *. float_of_int i)) at)
    got;
  Alcotest.(check bool) "ran in windows" true (Pdes.windows pdes > 0);
  Alcotest.(check bool) "counted events" true (Pdes.total_events pdes >= 6)

let test_pdes_lookahead_guard () =
  let pdes = Pdes.create ~lookahead:10. 2 in
  ignore
    (Engine.schedule_at (Pdes.engine pdes 0) ~time:1. (fun () ->
         Alcotest.check_raises "post inside lookahead"
           (Invalid_argument
              "Pdes.post: arrival 6 from partition 0 at 1 violates lookahead 10")
           (fun () -> Pdes.post pdes ~src:0 ~dst:1 ~time:6. (fun () -> ()))));
  Pdes.run pdes

let[@dqr.lint.allow "R5"] test_pdes_same_time_posts_ordered_by_src () =
  (* Two partitions post to a third at the same virtual time: flush
     order must be (time, src, per-channel seq), whatever the
     execution interleaving. *)
  let pdes = Pdes.create ~lookahead:5. 3 in
  let log = ref [] in
  for src = 0 to 1 do
    ignore
      (Engine.schedule_at (Pdes.engine pdes src) ~time:1. (fun () ->
           Pdes.post pdes ~src ~dst:2 ~time:20. (fun () -> log := (src, 0) :: !log);
           Pdes.post pdes ~src ~dst:2 ~time:20. (fun () -> log := (src, 1) :: !log)))
  done;
  Pdes.run pdes;
  Alcotest.(check (list (pair int int)))
    "deterministic same-time merge"
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]
    (List.rev !log)

(* {2 Serial-oracle determinism: the campaign} *)

let campaign_configs =
  let base = Sites.default in
  [
    ( "clean",
      { base with Sites.n_sites = 3; clients_per_site = 2; ops_per_client = 20; seed = 1L } );
    ( "lossy",
      {
        base with
        Sites.n_sites = 3;
        clients_per_site = 2;
        ops_per_client = 20;
        loss = 0.05;
        remote_ratio = 0.4;
        seed = 7L;
      } );
    ( "crashy",
      {
        base with
        Sites.n_sites = 4;
        clients_per_site = 2;
        ops_per_client = 25;
        crash_sites = 2;
        loss = 0.02;
        seed = 42L;
      } );
    ( "batched",
      {
        base with
        Sites.n_sites = 3;
        clients_per_site = 3;
        ops_per_client = 20;
        batch_ms = 5.;
        remote_ratio = 0.3;
        seed = 1337L;
      } );
  ]

let check_identical name (a : Sites.result) (b : Sites.result) =
  Alcotest.(check int) (name ^ ": completed") a.Sites.ops_completed b.Sites.ops_completed;
  Alcotest.(check int) (name ^ ": gave up") a.Sites.ops_gave_up b.Sites.ops_gave_up;
  Alcotest.(check int) (name ^ ": events") a.Sites.events b.Sites.events;
  Alcotest.(check int) (name ^ ": windows") a.Sites.windows b.Sites.windows;
  Alcotest.(check int) (name ^ ": sent") a.Sites.msgs_sent b.Sites.msgs_sent;
  Alcotest.(check int) (name ^ ": delivered") a.Sites.msgs_delivered b.Sites.msgs_delivered;
  Alcotest.(check int) (name ^ ": dropped") a.Sites.msgs_dropped b.Sites.msgs_dropped;
  Alcotest.(check string) (name ^ ": metrics JSON") a.Sites.metrics_json b.Sites.metrics_json;
  Alcotest.(check int) (name ^ ": checked reads") a.Sites.checked_reads b.Sites.checked_reads;
  Alcotest.(check int) (name ^ ": violations") a.Sites.violations b.Sites.violations;
  (* the histories themselves, interval for interval *)
  Alcotest.(check bool) (name ^ ": histories bit-identical") true
    (a.Sites.history = b.Sites.history)

let test_determinism_campaign () =
  Dq_par.Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun (name, cfg) ->
          let serial = Sites.run cfg in
          let parallel = Sites.run ~pool cfg in
          check_identical name serial parallel;
          (* the workload is regular by construction: the checker verdict
             is part of the oracle *)
          Alcotest.(check int) (name ^ ": regular") 0 serial.Sites.violations;
          Alcotest.(check bool) (name ^ ": progress") true (serial.Sites.ops_completed > 0))
        campaign_configs)

let test_crash_windows_cause_give_ups () =
  let cfg =
    {
      Sites.default with
      Sites.n_sites = 2;
      clients_per_site = 2;
      ops_per_client = 40;
      crash_sites = 1;
      remote_ratio = 0.;
      seed = 5L;
    }
  in
  let r = Sites.run cfg in
  Alcotest.(check bool) "some ops failed during the outage" true (r.Sites.ops_gave_up > 0);
  Alcotest.(check bool) "messages were dropped" true (r.Sites.msgs_dropped > 0);
  Alcotest.(check int) "still regular" 0 r.Sites.violations

let test_batching_reduces_events () =
  let base =
    {
      Sites.default with
      Sites.n_sites = 2;
      clients_per_site = 4;
      ops_per_client = 30;
      remote_ratio = 0.;
      seed = 11L;
    }
  in
  let exact = Sites.run base in
  let batched = Sites.run { base with Sites.batch_ms = 10. } in
  Alcotest.(check int) "same ops complete" exact.Sites.ops_completed batched.Sites.ops_completed;
  Alcotest.(check bool) "batching does not lose messages" true
    (batched.Sites.msgs_delivered = exact.Sites.msgs_delivered);
  Alcotest.(check bool)
    (Printf.sprintf "fewer engine events (%d vs %d)" batched.Sites.events exact.Sites.events)
    true
    (batched.Sites.events <= exact.Sites.events)

let () =
  Alcotest.run "pdes"
    [
      ( "spsc",
        [
          Alcotest.test_case "fifo drain" `Quick test_spsc_fifo;
          Alcotest.test_case "full + wraparound" `Quick test_spsc_full_and_wrap;
        ] );
      ( "pdes",
        [
          Alcotest.test_case "cross-partition exchange" `Quick test_pdes_basic_exchange;
          Alcotest.test_case "lookahead guard" `Quick test_pdes_lookahead_guard;
          Alcotest.test_case "same-time merge order" `Quick test_pdes_same_time_posts_ordered_by_src;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "serial = parallel campaign" `Quick test_determinism_campaign;
          Alcotest.test_case "crash windows" `Quick test_crash_windows_cause_give_ups;
          Alcotest.test_case "batched delivery" `Quick test_batching_reduces_events;
        ] );
    ]
