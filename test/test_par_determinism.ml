(* Determinism regression: for a fixed seed, every experiment sweep must
   produce bit-identical rows whether it runs serially or fanned across a
   domain pool of any size. Each run owns its own seeded engine, and the
   pool's map preserves input order, so any divergence here means shared
   mutable state leaked between runs. *)

module E = Dq_harness.Experiment

(* Polymorphic [compare] rather than [=] so a NaN field (a latency mean
   with no samples) still equals itself. *)
let same label a b = Alcotest.(check bool) label true (compare a b = 0)

let with_jobs jobs f =
  E.set_jobs jobs;
  Fun.protect ~finally:(fun () -> E.set_jobs 1) f

let test_fig6a_deterministic () =
  let serial = with_jobs 1 (fun () -> E.fig6a ~ops:30 ()) in
  Alcotest.(check int) "five protocols" 5 (List.length serial);
  List.iter
    (fun jobs ->
      let par = with_jobs jobs (fun () -> E.fig6a ~ops:30 ()) in
      same (Printf.sprintf "fig6a serial = fig6a -j %d" jobs) serial par)
    [ 1; 2; 4 ]

let test_ablation_deterministic () =
  let serial = with_jobs 1 (fun () -> E.ablation_lease_len ~ops:20 ()) in
  List.iter
    (fun jobs ->
      let par = with_jobs jobs (fun () -> E.ablation_lease_len ~ops:20 ()) in
      same (Printf.sprintf "ablation_lease_len serial = -j %d" jobs) serial par)
    [ 2; 4 ]

let test_sweep_deterministic () =
  (* A flattened product sweep (points x protocols) must regroup into the
     same per-point rows the serial nested loop produced. *)
  let serial =
    with_jobs 1 (fun () -> E.fig6b ~ops:12 ~write_ratios:[ 0.05; 0.5; 0.95 ] ())
  in
  let par = with_jobs 3 (fun () -> E.fig6b ~ops:12 ~write_ratios:[ 0.05; 0.5; 0.95 ] ()) in
  Alcotest.(check int) "three sweep points" 3 (List.length par);
  same "fig6b serial = fig6b -j 3" serial par

let () =
  Alcotest.run "par_determinism"
    [
      ( "determinism",
        [
          Alcotest.test_case "fig6a 1/2/4 domains" `Quick test_fig6a_deterministic;
          Alcotest.test_case "ablation_lease_len 2/4 domains" `Quick
            test_ablation_deterministic;
          Alcotest.test_case "fig6b flattened sweep" `Quick test_sweep_deterministic;
        ] );
    ]
