(* R9 fixture: wildcard arms silently dropping message variants. *)

module Message = struct
  type t = Read_req of int | Write_req of int * string | Inval of int
end

let handle_read _ = ()

(* a bare wildcard swallows every future constructor *)
let dispatch (msg : Message.t) =
  match msg with Message.Read_req op -> handle_read op | _ -> ()

(* naming the binder doesn't make the drop any less silent *)
let dispatch_named (msg : Message.t) =
  match msg with Message.Read_req op -> handle_read op | _other -> ()
