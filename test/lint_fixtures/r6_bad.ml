(* R6 fixture: raw engine scheduling. Nothing checks the node's
   incarnation at expiry, so a crash/amnesia restart between arming and
   firing resurrects the callback into the node's next life. *)

let arm engine f = ignore (Dq_sim.Engine.schedule engine ~delay:10. f)

let arm_at engine f = ignore (Dq_sim.Engine.schedule_at engine ~time:99. f)
