(* R4 fixture: telemetry publishes that construct their event with no
   Bus.subscribed guard in sight — two findings. *)

let bus = Dq_telemetry.Bus.create ()

let publish_unguarded () =
  Dq_telemetry.Bus.emit bus
    (Dq_telemetry.Event.Note { src = "fixture"; msg = "unguarded" })

let emit ev = Dq_telemetry.Bus.emit bus ev

let wrapper_unguarded () =
  emit (Dq_telemetry.Event.Note { src = "fixture"; msg = "wrapper" })
