(* R7 fixture: Hashtbl.fold/iter results escaping in hash order. *)

(* the raw fold is the function's result *)
let pairs (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(* interprocedural: the fold hides in a local helper whose result
   escapes unsorted through the enclosing function's tail *)
let via_helper (tbl : (string, int) Hashtbl.t) =
  let collect () = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  collect ()

(* the imperative spelling: iter consing into a captured ref *)
let listed (tbl : (string, int) Hashtbl.t) =
  let acc = ref [] in
  Hashtbl.iter (fun k _ -> acc := k :: !acc) tbl;
  !acc
