(* R8 clean twin: total spellings of the same operations. *)

let first (l : int list) = match l with [] -> None | x :: _ -> Some x

let third (l : int list) = List.nth_opt l 2

let force o ~default = Option.value o ~default

let random_peer rng (peers : int list) = Dq_util.Rng.choose rng peers
