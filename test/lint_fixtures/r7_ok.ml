(* R7 clean twin: every escaping fold result is either sorted before it
   escapes or accumulated commutatively, so hash order is unobservable. *)

(* sorted at the tail *)
let pairs (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* commutative accumulators: sum, tuple of counts, guarded count *)
let total (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let stats (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun _ v (n, s) -> (n + 1, s + v)) tbl (0, 0)

let positive (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun _ v acc -> if v > 0 then acc + 1 else acc) tbl 0

(* a local helper's raw fold is fine when the escape point sorts it *)
let sorted_keys (tbl : (string, int) Hashtbl.t) =
  let collect () = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort String.compare (collect ())

(* consumed locally: the raw list never escapes *)
let largest (tbl : (string, int) Hashtbl.t) =
  let ks = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.fold_left (fun best k -> if String.compare k best > 0 then k else best) "" ks
