(* R4 fixture, clean: every event construction sits behind a
   subscribed check, in each of the guard idioms the tree uses. *)

let bus = Dq_telemetry.Bus.create ()

(* Direct guard. *)
let direct () =
  if Dq_telemetry.Bus.subscribed bus then
    Dq_telemetry.Bus.emit bus
      (Dq_telemetry.Event.Note { src = "fixture"; msg = "direct" })

(* Module-local wrappers, as in lib/dq/oqs_server.ml. *)
let subscribed () = Dq_telemetry.Bus.subscribed bus

(* Prebuilt event argument: construction happened at the (guarded)
   caller, so the helper itself is fine. *)
let emit ev = Dq_telemetry.Bus.emit bus ev

let wrapped () =
  if subscribed () then
    emit (Dq_telemetry.Event.Note { src = "fixture"; msg = "wrapped" })

(* Guard bound as a boolean, as in lib/net/net.ml. *)
let bound () =
  let subscribed = Dq_telemetry.Bus.subscribed bus in
  if subscribed then
    emit (Dq_telemetry.Event.Note { src = "fixture"; msg = "bound" })

(* Guard in a match case's when-clause. *)
let via_match n =
  match n with
  | 0 -> ()
  | n when subscribed () ->
    emit (Dq_telemetry.Event.Note { src = "fixture"; msg = string_of_int n })
  | _ -> ()

(* Conjunction: the guard need only appear somewhere in the condition. *)
let conj n =
  if n > 0 && subscribed () then
    emit (Dq_telemetry.Event.Note { src = "fixture"; msg = "conj" })
