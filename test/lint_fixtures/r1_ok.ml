(* R1 fixture, clean: immediates, compiler-specialized base types, and
   monomorphic comparators are all allowed. *)

type color = Red | Green | Blue

(* Constant-constructor variants are immediate: exempt. *)
let same_color (a : color) (b : color) = a = b
let eq_int (a : int) (b : int) = a = b

(* The compiler specializes comparison primitives at float/string. *)
let lt_float (a : float) (b : float) = a < b
let cmp_str (a : string) (b : string) = compare a b

(* Monomorphic comparators. *)
let eq_str (a : string) (b : string) = String.equal a b
let max_float (a : float) (b : float) = Float.max a b
let eq_opt (a : float option) (b : float option) = Option.equal Float.equal a b
