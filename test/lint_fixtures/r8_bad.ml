(* R8 fixture: partial functions whose failure the types allow. *)

let first (l : int list) = List.hd l

let third (l : int list) = List.nth l 2

let force (o : string option) = Option.get o
