(* R3 fixture: wall-clock reads — three findings. *)

let now_wall () = Unix.gettimeofday ()
let epoch () = Unix.time ()
let cpu () = Sys.time ()
