(* R5 fixture, clean: post callbacks that only call functions (the
   sanctioned delivery pattern) or mutate state they create. *)

let deliver pdes (handlers : (int -> unit) array) =
  Dq_sim.Pdes.post pdes ~src:0 ~dst:1 ~time:100. (fun () -> handlers.(1) 7)

let local_state pdes =
  Dq_sim.Pdes.post pdes ~src:0 ~dst:1 ~time:100. (fun () ->
      let c = ref 0 in
      incr c;
      ignore !c)

let relay pdes =
  Dq_sim.Pdes.post pdes ~src:0 ~dst:1 ~time:100. (fun () ->
      Dq_sim.Pdes.post pdes ~src:1 ~dst:0 ~time:300. (fun () -> ()))
