(* R1 fixture: every definition here compares/hashes polymorphically at
   a non-immediate type and must be flagged. *)

let eq_pair (a : int * int) (b : int * int) = a = b
let cmp_opt (a : float option) (b : float option) = compare a b
let hash_list (l : string list) = Hashtbl.hash l
let mem_str (s : string) (l : string list) = List.mem s l
let max_opt (a : int option) (b : int option) = max a b
