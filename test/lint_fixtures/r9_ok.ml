(* R9 clean twin: every way a wildcard-looking arm is acceptable. *)

module Message = struct
  type t = Read_req of int | Write_req of int * string | Inval of int
end

let handle_read _ = ()

(* constructors named explicitly: adding one is a compile error here *)
let dispatch (msg : Message.t) =
  match msg with
  | Message.Read_req op -> handle_read op
  | Message.Write_req _ | Message.Inval _ -> ()

(* a deliberate drop, annotated *)
let client_stub (msg : Message.t) =
  match msg with
  | Message.Read_req op -> handle_read op
  | _ -> () [@dqr.lint.allow "R9"]

(* a wildcard that records the drop is not silent *)
let counted (dropped : int ref) (msg : Message.t) =
  match msg with Message.Read_req op -> handle_read op | _ -> incr dropped

(* non-message variants are out of scope *)
type shape = Circle | Square | Triangle

let corners (s : shape) = match s with Circle -> 0 | _ -> 3
