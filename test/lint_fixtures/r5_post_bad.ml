(* R5 fixture: closures posted across partitions mutating state
   captured from the posting side — three findings (ref write, hashtable
   mutation, field write). *)

type cell = { mutable v : int }

let count_on_remote pdes =
  let acc = ref 0 in
  Dq_sim.Pdes.post pdes ~src:0 ~dst:1 ~time:100. (fun () -> acc := !acc + 1);
  !acc

let tally_on_remote pdes (seen : (int, bool) Hashtbl.t) =
  Dq_sim.Pdes.post pdes ~src:0 ~dst:1 ~time:100. (fun () -> Hashtbl.replace seen 1 true)

let write_field_on_remote pdes (c : cell) =
  Dq_sim.Pdes.post pdes ~src:0 ~dst:1 ~time:100. (fun () -> c.v <- 7)
