(* R3 fixture, clean: time is a parameter, never the host clock. *)

let now ~(clock : unit -> float) = clock ()
let expired ~clock ~deadline = Float.compare (now ~clock) deadline > 0
