(* Suppression fixture: every violation below carries an explicit
   [@dqr.lint.allow] — the lint must report nothing for this file. *)

(* File-level floating attribute: R2 allowed for the whole file. *)
[@@@dqr.lint.allow "R2"]

(* Expression-level, by rule id. *)
let cmp_opt (a : float option) (b : float option) =
  (compare a b [@dqr.lint.allow "R1"])

(* Let-binding-level, by rule name. *)
let[@dqr.lint.allow "no-poly-compare"] eq_lists (a : int list) (b : int list) =
  a = b

(* Covered by the floating R2 allow above. *)
let roll () = Random.int 6

(* Empty payload allows every rule for the subtree. *)
let wall () = (Unix.gettimeofday () [@dqr.lint.allow])
