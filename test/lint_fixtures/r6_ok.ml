(* R6 clean twin: node-scoped timers go through Net.timer, which drops
   the callback if the node is down or has a newer incarnation at
   expiry. Cancelling a handle is always fine. *)

let arm net ~node f = ignore (Dq_net.Net.timer net ~node ~delay_ms:10. f)

let cancel handle = Dq_sim.Engine.cancel handle
