(* R5 fixture, clean: pure workers, and mutation confined to state the
   worker itself creates. *)

type cell = { mutable v : int }

let double pool xs = Dq_par.Pool.map pool (fun x -> 2 * x) xs

let local_ref pool xs =
  Dq_par.Pool.map pool
    (fun x ->
      let c = ref 0 in
      for _ = 1 to x do
        incr c
      done;
      !c)
    xs

let local_record pool xs =
  Dq_par.Pool.map pool
    (fun x ->
      let c = { v = 0 } in
      c.v <- x;
      c.v)
    xs

let local_table pool xs =
  Dq_par.Pool.map pool
    (fun x ->
      let h = Hashtbl.create 4 in
      Hashtbl.replace h x x;
      Hashtbl.length h)
    xs
