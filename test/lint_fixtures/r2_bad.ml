(* R2 fixture: ambient Stdlib.Random — two findings. *)

let roll () = Random.int 6
let coin () = Random.bool ()
