(* R2 fixture, clean: randomness flows from a seeded Dq_util.Rng. *)

let roll rng = Dq_util.Rng.int rng 6
let coin rng = Dq_util.Rng.bool rng
