(* R5 fixture: pool worker closures mutating captured state — three
   findings (ref write, hashtable mutation, field write). *)

type cell = { mutable v : int }

let sum_via_shared_ref pool xs =
  let acc = ref 0 in
  let _ = Dq_par.Pool.map pool (fun x -> acc := !acc + x) xs in
  !acc

let tally_shared pool xs =
  let seen = Hashtbl.create 8 in
  Dq_par.Pool.map pool (fun x -> Hashtbl.replace seen x true) xs

let write_captured_field pool (c : cell) xs =
  Dq_par.Pool.map pool (fun x -> c.v <- x) xs
