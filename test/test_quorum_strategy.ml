(* Quorum-selection strategies: golden RNG streams pinning the default
   (implicit) strategy to the pre-strategy samplers, QCheck properties
   that every sample from every strategy kind is a valid quorum and
   that strategy supports keep the intersection properties, and the
   exact load/latency computations on hand-checkable systems. *)

module Qs = Dq_quorum.Quorum_system
module Strategy = Dq_quorum.Strategy
module Rng = Dq_util.Rng

let members n = List.init n Fun.id

let majority9 () = Qs.majority (members 9)

let rowa5 () = Qs.rowa (members 5)

let grid3x3 () = Qs.grid ~rows:3 ~cols:3 (members 9)

let weighted5 () =
  Qs.weighted ~name:"w" ~members:[ (0, 3); (1, 2); (2, 1); (3, 1); (4, 1) ] ~read:4
    ~write:5

let quorum = Alcotest.(list int)

(* Golden streams captured from the pre-strategy samplers: the default
   strategy must replay them bit-for-bit — same quorums from the same
   seeds, drawing the same number of RNG values. *)
let golden_streams =
  [
    ( "majority9.read", majority9 (), Qs.Read, 42L,
      [ [ 0; 8; 3; 7; 2 ]; [ 3; 4; 8; 7; 2 ]; [ 7; 2; 8; 3; 1 ];
        [ 8; 6; 1; 2; 5 ]; [ 7; 3; 4; 1; 5 ]; [ 0; 4; 7; 1; 6 ] ] );
    ( "majority9.write", majority9 (), Qs.Write, 43L,
      [ [ 7; 6; 3; 4; 2 ]; [ 0; 1; 7; 6; 2 ]; [ 7; 3; 1; 5; 2 ];
        [ 0; 4; 6; 1; 2 ]; [ 3; 4; 1; 8; 2 ]; [ 2; 0; 4; 8; 1 ] ] );
    ( "rowa5.read", rowa5 (), Qs.Read, 44L,
      [ [ 4 ]; [ 2 ]; [ 3 ]; [ 3 ]; [ 1 ]; [ 2 ] ] );
    ( "rowa5.write", rowa5 (), Qs.Write, 45L,
      [ [ 3; 0; 1; 2; 4 ]; [ 4; 1; 2; 0; 3 ]; [ 3; 2; 1; 0; 4 ] ] );
    ( "grid3x3.read", grid3x3 (), Qs.Read, 46L,
      [ [ 0; 4; 5 ]; [ 0; 7; 2 ]; [ 6; 1; 5 ]; [ 3; 4; 5 ]; [ 6; 1; 8 ];
        [ 0; 1; 2 ] ] );
    ( "grid3x3.write", grid3x3 (), Qs.Write, 47L,
      [ [ 2; 5; 8; 3; 4 ]; [ 0; 3; 6; 1; 5 ]; [ 1; 4; 7; 0; 2 ];
        [ 0; 3; 6; 4; 8 ]; [ 1; 4; 7; 6; 8 ]; [ 2; 5; 8; 0; 1 ] ] );
    ( "weighted.read", weighted5 (), Qs.Read, 48L,
      [ [ 0; 2 ]; [ 2; 3; 1 ]; [ 1; 2; 3 ]; [ 0; 4 ]; [ 0; 1 ]; [ 0; 1 ];
        [ 0; 2 ]; [ 0; 1 ] ] );
    ( "weighted.write", weighted5 (), Qs.Write, 49L,
      [ [ 2; 0; 1 ]; [ 4; 3; 1; 0 ]; [ 4; 2; 0 ]; [ 4; 0; 1 ]; [ 3; 1; 0 ];
        [ 0; 4; 2 ]; [ 2; 4; 3; 1 ]; [ 4; 0; 1 ] ] );
  ]

let test_golden_legacy_choose () =
  List.iter
    (fun (label, qs, mode, seed, expected) ->
      let rng = Rng.create seed in
      List.iter
        (fun want -> Alcotest.check quorum label want (Qs.choose qs mode rng))
        expected)
    golden_streams

let test_golden_default_strategy () =
  List.iter
    (fun (label, qs, mode, seed, expected) ->
      let strategy = Strategy.default qs mode in
      let rng = Rng.create seed in
      List.iter
        (fun want ->
          Alcotest.check quorum (label ^ " via default strategy") want
            (Strategy.sample strategy rng))
        expected)
    golden_streams

(* Read and write draws interleave on one RNG; the default strategy
   must consume exactly the same number of draws per sample as the
   legacy samplers, or everything downstream desynchronizes. *)
let test_golden_interleaved () =
  let qs = majority9 () in
  let expected =
    [
      ([ 3; 7; 4; 1; 0 ], [ 4; 0; 2; 6; 3 ]);
      ([ 0; 6; 8; 1; 2 ], [ 7; 0; 1; 5; 6 ]);
      ([ 2; 1; 4; 0; 8 ], [ 5; 3; 0; 8; 6 ]);
      ([ 6; 8; 4; 7; 5 ], [ 1; 7; 2; 4; 0 ]);
    ]
  in
  let run sample_read sample_write =
    let rng = Rng.create 7L in
    List.iteri
      (fun i (want_r, want_w) ->
        let tag = Printf.sprintf "pair %d" i in
        Alcotest.check quorum (tag ^ " read") want_r (sample_read rng);
        Alcotest.check quorum (tag ^ " write") want_w (sample_write rng))
      expected
  in
  run (Qs.choose_read qs) (Qs.choose_write qs);
  let sr = Strategy.default_read qs and sw = Strategy.default_write qs in
  run (Strategy.sample sr) (Strategy.sample sw)

(* --- QCheck: every sample is a quorum, for every strategy kind -------- *)

let constructions () =
  [
    majority9 ();
    rowa5 ();
    grid3x3 ();
    weighted5 ();
    Qs.threshold ~name:"t" ~members:(members 7) ~read:3 ~write:5;
  ]

let prop_default_samples_are_quorums =
  QCheck.Test.make ~name:"default strategy samples satisfy predicates" ~count:200
    QCheck.(pair (int_range 0 4) int64)
    (fun (i, seed) ->
      let qs = List.nth (constructions ()) i in
      let rng = Rng.create seed in
      List.for_all
        (fun mode ->
          let s = Strategy.default qs mode in
          List.for_all Fun.id
            (List.init 5 (fun _ -> Qs.is_quorum_list qs mode (Strategy.sample s rng))))
        [ Qs.Read; Qs.Write ])

let prop_uniform_samples_are_quorums =
  QCheck.Test.make ~name:"uniform strategy samples are minimal quorums" ~count:200
    QCheck.(pair (int_range 0 4) int64)
    (fun (i, seed) ->
      let qs = List.nth (constructions ()) i in
      let rng = Rng.create seed in
      List.for_all
        (fun mode ->
          let s = Strategy.uniform qs mode in
          List.for_all Fun.id
            (List.init 5 (fun _ ->
                 let q = Strategy.sample s rng in
                 Qs.is_quorum_list qs mode q
                 (* uniform samples come from the minimal-quorum
                    antichain: dropping any member breaks the quorum *)
                 && List.for_all
                      (fun dropped ->
                        not
                          (Qs.is_quorum_list qs mode
                             (List.filter (fun x -> x <> dropped) q)))
                      q)))
        [ Qs.Read; Qs.Write ])

(* Explicit strategies with arbitrary positive weights over the
   enumerated quorums: samples still land in the support. *)
let prop_explicit_samples_are_quorums =
  QCheck.Test.make ~name:"explicit strategy samples satisfy predicates" ~count:200
    QCheck.(triple (int_range 0 4) int64 (list_of_size Gen.(return 8) (float_range 0.01 10.)))
    (fun (i, seed, weights) ->
      let qs = List.nth (constructions ()) i in
      let rng = Rng.create seed in
      List.for_all
        (fun mode ->
          let quorums = Qs.quorums qs mode in
          let weighted =
            List.mapi
              (fun j q ->
                (q, List.nth weights (j mod List.length weights)))
              quorums
          in
          let s = Strategy.explicit qs mode weighted in
          List.for_all Fun.id
            (List.init 5 (fun _ -> Qs.is_quorum_list qs mode (Strategy.sample s rng))))
        [ Qs.Read; Qs.Write ])

(* The support of any explicit strategy pair keeps the intersection
   properties: read x write and write x write supports pairwise
   intersect, across every construction. *)
let prop_supports_intersect =
  QCheck.Test.make ~name:"strategy supports pairwise intersect" ~count:50
    QCheck.(int_range 0 4)
    (fun i ->
      let qs = List.nth (constructions ()) i in
      let support mode = Option.get (Strategy.support (Strategy.uniform qs mode)) in
      let reads = support Qs.Read and writes = support Qs.Write in
      match
        Qs.check_intersection ~read_quorums:reads ~write_quorums:writes ()
      with
      | Ok () -> true
      | Error _ -> false)

(* --- Exact computations ------------------------------------------------ *)

let test_uniform_math () =
  (* majority over 3 nodes: minimal read quorums are the three pairs,
     each with probability 1/3; every node sits in two of them. *)
  let qs = Qs.majority (members 3) in
  let s = Strategy.uniform_read qs in
  let close = Alcotest.float 1e-12 in
  Alcotest.check close "node load" (2. /. 3.) (Strategy.node_load s 0);
  Alcotest.check close "load" (2. /. 3.) (Strategy.load s);
  Alcotest.check close "capacity" 1.5 (Strategy.capacity s);
  Alcotest.check close "expected size" 2. (Strategy.expected_size s);
  (* latencies 10, 20, 30: quorum maxima are 20, 30, 30. *)
  let latency_ms id = float_of_int ((id + 1) * 10) in
  Alcotest.check close "expected latency"
    ((20. +. 30. +. 30.) /. 3.)
    (Strategy.expected_latency s ~latency_ms)

let test_explicit_point_mass () =
  let qs = Qs.majority (members 3) in
  let s = Strategy.explicit qs Qs.Read [ ([ 0; 1 ], 1.) ] in
  let close = Alcotest.float 1e-12 in
  Alcotest.check close "member load" 1. (Strategy.node_load s 0);
  Alcotest.check close "non-member load" 0. (Strategy.node_load s 2);
  Alcotest.check close "load" 1. (Strategy.load s);
  let rng = Rng.create 1L in
  for _ = 1 to 10 do
    Alcotest.check quorum "point mass sample" [ 0; 1 ] (Strategy.sample s rng)
  done

let test_explicit_validation () =
  let qs = Qs.majority (members 3) in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non-quorum rejected" true
    (raises (fun () -> ignore (Strategy.explicit qs Qs.Read [ ([ 0 ], 1.) ])));
  Alcotest.(check bool) "empty rejected" true
    (raises (fun () -> ignore (Strategy.explicit qs Qs.Read [])));
  Alcotest.(check bool) "zero mass rejected" true
    (raises (fun () -> ignore (Strategy.explicit qs Qs.Read [ ([ 0; 1 ], 0.) ])));
  Alcotest.(check bool) "negative rejected" true
    (raises (fun () -> ignore (Strategy.explicit qs Qs.Read [ ([ 0; 1 ], -1.) ])))

let test_default_has_no_distribution () =
  let qs = Qs.majority (members 3) in
  let s = Strategy.default_read qs in
  Alcotest.(check bool) "is default" true (Strategy.is_default s);
  Alcotest.(check bool) "no distribution" true
    (Option.is_none (Strategy.distribution s));
  Alcotest.(check bool) "load raises" true
    (try ignore (Strategy.load s); false with Invalid_argument _ -> true)

let test_distribution_normalized () =
  let qs = Qs.majority (members 3) in
  let s = Strategy.explicit qs Qs.Read [ ([ 0; 1 ], 3.); ([ 1; 2 ], 1.) ] in
  match Strategy.distribution s with
  | None -> Alcotest.fail "explicit strategy has a distribution"
  | Some dist ->
    let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
    Alcotest.check (Alcotest.float 1e-12) "probs sum to 1" 1. total;
    Alcotest.check (Alcotest.float 1e-12) "normalized" 0.75
      (List.assoc [ 0; 1 ] dist)

(* --- Enumeration and the generalized intersection predicate ------------ *)

let test_enumeration_majority () =
  let qs = Qs.majority (members 3) in
  Alcotest.(check (list (list int))) "read quorums"
    [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ]
    (Qs.read_quorums qs)

let test_enumeration_minimality () =
  List.iter
    (fun qs ->
      List.iter
        (fun mode ->
          List.iter
            (fun q ->
              Alcotest.(check bool) (Qs.name qs ^ " quorum") true
                (Qs.is_quorum_list qs mode q);
              List.iter
                (fun dropped ->
                  Alcotest.(check bool) (Qs.name qs ^ " minimal") false
                    (Qs.is_quorum_list qs mode
                       (List.filter (fun x -> x <> dropped) q)))
                q)
            (Qs.quorums qs mode))
        [ Qs.Read; Qs.Write ])
    (constructions ())

let test_check_intersection_overlap () =
  (* Pairs {0,1}/{1,2} overlap in exactly one member: fine at the
     default overlap 1, rejected when two are required (the masking /
     erasure-coded instantiation hook). *)
  let reads = [ [ 0; 1 ]; [ 1; 2 ] ] and writes = [ [ 0; 1 ]; [ 1; 2 ] ] in
  (match Qs.check_intersection ~read_quorums:reads ~write_quorums:writes () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "overlap 2 rejected" true
    (Result.is_error
       (Qs.check_intersection ~rw_overlap:2 ~read_quorums:reads ~write_quorums:writes ()));
  Alcotest.(check bool) "ww overlap 2 rejected" true
    (Result.is_error
       (Qs.check_intersection ~ww_overlap:2 ~read_quorums:reads ~write_quorums:writes ()));
  Alcotest.(check bool) "disjoint writes rejected" true
    (Result.is_error
       (Qs.check_intersection ~read_quorums:[ [ 0; 1 ] ]
          ~write_quorums:[ [ 0; 1 ]; [ 2; 3 ] ] ()))

let () =
  Alcotest.run "quorum_strategy"
    [
      ( "golden",
        [
          Alcotest.test_case "legacy choose streams" `Quick test_golden_legacy_choose;
          Alcotest.test_case "default strategy streams" `Quick
            test_golden_default_strategy;
          Alcotest.test_case "interleaved draws" `Quick test_golden_interleaved;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_default_samples_are_quorums;
            prop_uniform_samples_are_quorums;
            prop_explicit_samples_are_quorums;
            prop_supports_intersect;
          ] );
      ( "math",
        [
          Alcotest.test_case "uniform exact" `Quick test_uniform_math;
          Alcotest.test_case "point mass" `Quick test_explicit_point_mass;
          Alcotest.test_case "explicit validation" `Quick test_explicit_validation;
          Alcotest.test_case "default has no distribution" `Quick
            test_default_has_no_distribution;
          Alcotest.test_case "distribution normalized" `Quick
            test_distribution_normalized;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "majority quorums" `Quick test_enumeration_majority;
          Alcotest.test_case "minimality" `Quick test_enumeration_minimality;
          Alcotest.test_case "intersection overlaps" `Quick
            test_check_intersection_overlap;
        ] );
    ]
