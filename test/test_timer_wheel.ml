module W = Dq_sim.Timer_wheel
module Engine = Dq_sim.Engine

(* {2 Direct wheel API} *)

let test_reject_edges () =
  let w = W.create ~dummy:(-1) () in
  (* boundary after creation is the end of slot 0 *)
  Alcotest.(check (float 1e-9)) "boundary" 1.0 (W.boundary w);
  Alcotest.(check bool) "below boundary" false (W.add w ~time:0.5 ~seq:0 0);
  Alcotest.(check bool) "past horizon" false (W.add w ~time:(W.horizon w +. 1.) ~seq:1 1);
  Alcotest.(check bool) "exactly horizon" false (W.add w ~time:(W.horizon w) ~seq:2 2);
  Alcotest.(check bool) "in range" true (W.add w ~time:5.5 ~seq:3 3);
  Alcotest.(check int) "length" 1 (W.length w)

let test_advance_drains_in_slot_batches () =
  let w = W.create ~dummy:(-1) () in
  Alcotest.(check bool) "a" true (W.add w ~time:5.5 ~seq:0 0);
  Alcotest.(check bool) "b" true (W.add w ~time:5.9 ~seq:1 1);
  Alcotest.(check bool) "c" true (W.add w ~time:9.1 ~seq:2 2);
  let emitted = ref [] in
  W.advance w ~drain:(fun ~time:_ ~seq:_ x -> emitted := x :: !emitted);
  Alcotest.(check (list int)) "slot 5 first" [ 0; 1 ] (List.rev !emitted);
  Alcotest.(check bool) "boundary passed slot" true (W.boundary w > 5.9);
  emitted := [];
  W.advance w ~drain:(fun ~time:_ ~seq:_ x -> emitted := x :: !emitted);
  Alcotest.(check (list int)) "slot 9 next" [ 2 ] (List.rev !emitted);
  Alcotest.(check int) "empty" 0 (W.length w);
  Alcotest.check_raises "advance on empty" (Invalid_argument "Timer_wheel.advance: empty wheel")
    (fun () -> W.advance w ~drain:(fun ~time:_ ~seq:_ _ -> ()))

let test_level2_promotion () =
  let w = W.create ~dummy:(-1) () in
  (* past the level-1 rotation (256 slots of 1 ms) but inside level 2 *)
  Alcotest.(check bool) "l2 accept" true (W.add w ~time:1000.25 ~seq:0 7);
  Alcotest.(check bool) "l2 accept 2" true (W.add w ~time:1000.75 ~seq:1 8);
  let emitted = ref [] in
  W.advance w ~drain:(fun ~time ~seq x -> emitted := (time, seq, x) :: !emitted);
  Alcotest.(check int) "both promoted out of one slot" 2 (List.length !emitted);
  Alcotest.(check bool) "boundary covers them" true (W.boundary w > 1000.75);
  Alcotest.(check int) "drained" 0 (W.length w)

let test_rebase () =
  let w = W.create ~dummy:(-1) () in
  ignore (W.add w ~time:3.5 ~seq:0 0);
  Alcotest.check_raises "rebase non-empty" (Invalid_argument "Timer_wheel.rebase: wheel not empty")
    (fun () -> W.rebase w ~now:10.);
  W.advance w ~drain:(fun ~time:_ ~seq:_ _ -> ());
  W.rebase w ~now:5000.3;
  Alcotest.(check bool) "below new boundary rejected" false (W.add w ~time:5000.4 ~seq:1 1);
  Alcotest.(check bool) "new range accepted" true (W.add w ~time:5002.5 ~seq:2 2)

(* {2 Engine-level behaviour (wheel + heap together)} *)

let fire_order ~schedule =
  let eng = Engine.create () in
  let order = ref [] in
  schedule eng (fun tag () -> order := tag :: !order);
  Engine.run eng;
  List.rev !order

let test_equal_timestamp_fifo () =
  let order =
    fire_order ~schedule:(fun eng tag ->
        for i = 0 to 9 do
          ignore (Engine.schedule_at eng ~time:5. (tag i))
        done)
  in
  Alcotest.(check (list int)) "FIFO at equal times" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] order

let test_cancellation () =
  let eng = Engine.create () in
  let fired = ref [] in
  let keep = Engine.schedule_at eng ~time:2. (fun () -> fired := 0 :: !fired) in
  let drop_wheel = Engine.schedule_at eng ~time:3. (fun () -> fired := 1 :: !fired) in
  (* below the initial boundary: lands in the heap *)
  let drop_heap = Engine.schedule_at eng ~time:0.5 (fun () -> fired := 2 :: !fired) in
  ignore keep;
  Engine.cancel drop_wheel;
  Engine.cancel drop_heap;
  Engine.cancel drop_heap;
  Alcotest.(check int) "pending excludes cancelled" 1 (Engine.pending_events eng);
  Alcotest.(check bool) "cancelled not pending" false (Engine.is_pending drop_wheel);
  Engine.run eng;
  Alcotest.(check (list int)) "only the kept event fired" [ 0 ] (List.rev !fired);
  Alcotest.(check int) "events executed" 1 (Engine.events_executed eng)

let test_overflow_handoff () =
  (* Events beyond the wheel horizon live in the heap until the wheel
     rolls forward; order must still be global (time, seq). *)
  let order =
    fire_order ~schedule:(fun eng tag ->
        ignore (Engine.schedule_at eng ~time:200_000. (tag 3));
        ignore (Engine.schedule_at eng ~time:70_000. (tag 2));
        ignore (Engine.schedule_at eng ~time:100. (tag 0));
        ignore (Engine.schedule_at eng ~time:65_000. (tag 1)))
  in
  Alcotest.(check (list int)) "horizon overflow ordered" [ 0; 1; 2; 3 ] order

let test_run_before_strict () =
  let eng = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule_at eng ~time:1. (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule_at eng ~time:2. (fun () -> fired := 2 :: !fired));
  ignore (Engine.schedule_at eng ~time:3. (fun () -> fired := 3 :: !fired));
  Engine.run_before eng ~limit:2.;
  Alcotest.(check (list int)) "strictly below limit" [ 1 ] (List.rev !fired);
  Alcotest.(check (option (float 1e-9))) "next_time" (Some 2.) (Engine.next_time eng);
  Engine.run_before eng ~limit:10.;
  Alcotest.(check (list int)) "rest" [ 1; 2; 3 ] (List.rev !fired)

(* {2 Property: wheel + heap scheduling is order-identical to the
   heap-only model} *)

let prop_engine_order_matches_heap_model =
  QCheck.Test.make ~name:"engine (wheel+heap) fires in (time, seq) order" ~count:300
    QCheck.(list (int_range 0 3000))
    (fun raw ->
      (* Offsets in tenths of ms spanning both wheel levels, the
         pre-boundary heap path and duplicates for FIFO ties. *)
      let times = List.map (fun i -> float_of_int i /. 10.) raw in
      let eng = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun seq time ->
          ignore (Engine.schedule_at eng ~time (fun () -> fired := (time, seq) :: !fired)))
        times;
      Engine.run eng;
      let got = List.rev !fired in
      let model =
        List.mapi (fun seq time -> (time, seq)) times
        |> List.sort (fun (ta, sa) (tb, sb) ->
               let c = Float.compare ta tb in
               if c <> 0 then c else Int.compare sa sb)
      in
      got = model)

let prop_wheel_never_loses_events =
  QCheck.Test.make ~name:"wheel add/advance conserves events" ~count:300
    QCheck.(list (pair (int_range 0 70_000) small_nat))
    (fun raw ->
      let w = W.create ~dummy:(-1) () in
      let in_wheel = ref 0 in
      List.iteri
        (fun i (t, _) ->
          if W.add w ~time:(float_of_int t /. 1.7) ~seq:i i then incr in_wheel)
        raw;
      let emitted = ref 0 in
      let ok = ref true in
      while W.length w > 0 do
        let b = W.boundary w in
        W.advance w ~drain:(fun ~time ~seq:_ _ ->
            incr emitted;
            (* nothing below the pre-advance boundary is ever stored *)
            if time < b then ok := false)
      done;
      !ok && !emitted = !in_wheel)

let () =
  Alcotest.run "timer_wheel"
    [
      ( "wheel",
        [
          Alcotest.test_case "rejects edges to heap" `Quick test_reject_edges;
          Alcotest.test_case "advance drains slot batches" `Quick test_advance_drains_in_slot_batches;
          Alcotest.test_case "level-2 promotion" `Quick test_level2_promotion;
          Alcotest.test_case "rebase" `Quick test_rebase;
        ] );
      ( "engine",
        [
          Alcotest.test_case "equal-timestamp FIFO" `Quick test_equal_timestamp_fifo;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "wheel-heap overflow handoff" `Quick test_overflow_handoff;
          Alcotest.test_case "run_before is strict" `Quick test_run_before_strict;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_engine_order_matches_heap_model; prop_wheel_never_loses_events ] );
    ]
