(* The wire-protocol metadata: classification labels, wire-size model,
   pretty-printing, and configuration validation. *)

module M = Dq_core.Message
module BM = Dq_proto.Base_msg
module Config = Dq_core.Config
module Qs = Dq_quorum.Quorum_system
open Dq_storage

let key = Key.make ~volume:1 ~index:2

let lc = Lc.make ~count:3 ~node:4

let grant value =
  { M.g_key = key; g_epoch = 1; g_lc = lc; g_value = value; g_lease_ms = infinity; g_t0 = 0. }

let dq_messages value =
  [
    M.Client_read_req { op = 1; key };
    M.Client_read_reply { op = 1; key; value; lc };
    M.Client_write_req { op = 2; key; value };
    M.Client_write_reply { op = 2; key; lc };
    M.Oqs_read_req { op = 3; key };
    M.Oqs_read_reply { op = 3; key; value; lc };
    M.Lc_read_req { op = 4 };
    M.Lc_read_reply { op = 4; lc };
    M.Iqs_write_req { op = 5; key; value; lc };
    M.Iqs_write_ack { op = 5; key; lc };
    M.Obj_renew_req { key; t0 = 0. };
    M.Obj_renew_reply { grant = grant value };
    M.Vol_renew_req { volume = 1; t0 = 0.; want = Some key; epoch = 0 };
    M.Vol_renew_reply
      { volume = 1; lease_ms = 1000.; epoch = 0; t0 = 0.; delayed = [ (key, lc) ];
        grant = Some (grant value) };
    M.Vol_renew_ack { volume = 1; upto = lc };
    M.Inval { key; lc };
    M.Inval_ack { key; lc };
  ]

let test_labels_distinct () =
  let labels = List.map M.classify (dq_messages "v") in
  Alcotest.(check int) "all labels distinct" (List.length labels)
    (List.length (List.sort_uniq compare labels))

let test_sizes_positive () =
  List.iter
    (fun msg ->
      Alcotest.(check bool) (M.classify msg ^ " size positive") true (M.size_of msg > 0))
    (dq_messages "v")

let test_size_grows_with_payload () =
  let small = M.Iqs_write_req { op = 1; key; value = "x"; lc } in
  let large = M.Iqs_write_req { op = 1; key; value = String.make 1000 'x'; lc } in
  Alcotest.(check int) "payload accounted" 999 (M.size_of large - M.size_of small)

let test_vol_reply_size_grows_with_delayed () =
  let reply delayed =
    M.Vol_renew_reply { volume = 0; lease_ms = 1.; epoch = 0; t0 = 0.; delayed; grant = None }
  in
  let none = M.size_of (reply []) in
  let three = M.size_of (reply [ (key, lc); (key, lc); (key, lc) ]) in
  Alcotest.(check bool) "delayed invals accounted" true (three > none)

let test_pp_total () =
  List.iter
    (fun msg ->
      let s = Format.asprintf "%a" M.pp msg in
      Alcotest.(check bool) "pp non-empty" true (String.length s > 0))
    (dq_messages "v")

let test_base_msg_sizes () =
  let msgs =
    [
      BM.Client_read_req { op = 1; key; floor = lc };
      BM.Read_req { op = 1; key };
      BM.Write_req { op = 1; key; value = "v"; lc };
      BM.Propagate { key; value = "v"; lc };
      BM.Gossip { entries = [ (key, "v", lc) ] };
    ]
  in
  List.iter
    (fun msg ->
      Alcotest.(check bool) (BM.classify msg ^ " size positive") true (BM.size_of msg > 0))
    msgs;
  let g n = BM.size_of (BM.Gossip { entries = List.init n (fun _ -> (key, "v", lc)) }) in
  Alcotest.(check bool) "gossip grows with entries" true (g 10 > g 1)

(* --- configuration validation ------------------------------------------- *)

let servers = [ 0; 1; 2; 3; 4 ]

let invalid f = try ignore (f ()); false with Invalid_argument _ -> true

let test_config_defaults_valid () =
  Config.validate (Config.dqvl ~servers ());
  Config.validate (Config.basic ~servers ());
  Config.validate (Config.dqvl ~servers ~object_lease_ms:500. ())

let test_config_rejects_bad_lease () =
  Alcotest.(check bool) "zero lease" true
    (invalid (fun () -> Config.dqvl ~servers ~volume_lease_ms:0. ()));
  Alcotest.(check bool) "negative object lease" true
    (invalid (fun () -> Config.dqvl ~servers ~object_lease_ms:(-1.) ()))

let test_config_rejects_bad_drift () =
  let base = Config.dqvl ~servers () in
  Alcotest.(check bool) "drift >= 1" true
    (invalid (fun () -> Config.validate { base with Config.max_drift = 1.0 }));
  Alcotest.(check bool) "negative drift" true
    (invalid (fun () -> Config.validate { base with Config.max_drift = -0.1 }))

let test_config_rejects_bad_margin () =
  let base = Config.dqvl ~servers () in
  Alcotest.(check bool) "margin >= lease" true
    (invalid (fun () ->
         Config.validate { base with Config.renew_margin_ms = base.Config.volume_lease_ms }))

let test_config_rejects_bad_retry () =
  let base = Config.dqvl ~servers () in
  Alcotest.(check bool) "zero timeout" true
    (invalid (fun () -> Config.validate { base with Config.retry_timeout_ms = 0. }));
  Alcotest.(check bool) "backoff < 1" true
    (invalid (fun () -> Config.validate { base with Config.retry_backoff = 0.5 }))

let test_config_names () =
  Alcotest.(check string) "dqvl" "dqvl" (Config.name (Config.dqvl ~servers ()));
  Alcotest.(check string) "basic" "dq-basic" (Config.name (Config.basic ~servers ()));
  Alcotest.(check string) "atomic" "dqvl-atomic"
    (Config.name { (Config.dqvl ~servers ()) with Config.atomic_reads = true })

let test_custom_quorum_shapes () =
  (* The config accepts any pair of quorum systems with the right
     intersection properties, e.g. a grid IQS (paper future work). *)
  let config =
    {
      (Config.dqvl ~servers:(List.init 9 Fun.id) ()) with
      Config.iqs = Qs.grid ~rows:3 ~cols:3 (List.init 9 Fun.id);
    }
  in
  Config.validate config

let () =
  Alcotest.run "messages"
    [
      ( "wire model",
        [
          Alcotest.test_case "labels distinct" `Quick test_labels_distinct;
          Alcotest.test_case "sizes positive" `Quick test_sizes_positive;
          Alcotest.test_case "payload size" `Quick test_size_grows_with_payload;
          Alcotest.test_case "delayed invals size" `Quick test_vol_reply_size_grows_with_delayed;
          Alcotest.test_case "pp" `Quick test_pp_total;
          Alcotest.test_case "base messages" `Quick test_base_msg_sizes;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults valid" `Quick test_config_defaults_valid;
          Alcotest.test_case "bad lease" `Quick test_config_rejects_bad_lease;
          Alcotest.test_case "bad drift" `Quick test_config_rejects_bad_drift;
          Alcotest.test_case "bad margin" `Quick test_config_rejects_bad_margin;
          Alcotest.test_case "bad retry" `Quick test_config_rejects_bad_retry;
          Alcotest.test_case "names" `Quick test_config_names;
          Alcotest.test_case "custom quorum shapes" `Quick test_custom_quorum_shapes;
        ] );
    ]
