module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Msg_stats = Dq_net.Msg_stats

type msg = Ping of int

let classify (Ping _) = "ping"

let make ?faults () =
  let engine = Engine.create ~seed:1L () in
  let topo = Topology.make ~n_servers:4 ~n_clients:1 () in
  let net = Net.create engine topo ?faults ~classify () in
  (engine, net)

let collect net node =
  let received = ref [] in
  Net.register net ~node (fun ~src msg -> received := (src, msg) :: !received);
  received

let test_delivery_and_delay () =
  let engine, net = make () in
  let received = collect net 1 in
  let arrival = ref 0. in
  Net.register net ~node:1 (fun ~src msg ->
      arrival := Engine.now engine;
      ignore src;
      ignore msg);
  Net.send net ~src:0 ~dst:1 (Ping 7);
  Engine.run engine;
  Alcotest.(check (float 0.)) "server-server delay" 80. !arrival;
  ignore received

let test_local_delivery () =
  let engine, net = make () in
  let arrival = ref (-1.) in
  Net.register net ~node:2 (fun ~src:_ _ -> arrival := Engine.now engine);
  Net.send net ~src:2 ~dst:2 (Ping 0);
  Engine.run engine;
  Alcotest.(check (float 0.)) "local delay" 0.05 !arrival

let test_sender_id_passed () =
  let engine, net = make () in
  let received = collect net 3 in
  Net.send net ~src:1 ~dst:3 (Ping 9);
  Engine.run engine;
  match !received with
  | [ (src, Ping 9) ] -> Alcotest.(check int) "src" 1 src
  | _ -> Alcotest.fail "expected exactly one message"

let test_loss () =
  let engine, net = make ~faults:{ Net.loss = 1.0; duplicate = 0.; jitter_ms = 0. } () in
  let received = collect net 1 in
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 (Ping 0)
  done;
  Engine.run engine;
  Alcotest.(check int) "all lost" 0 (List.length !received);
  (* Lost messages still count as sent. *)
  Alcotest.(check int) "counted as sent" 20 (Msg_stats.remote_total (Net.stats net))

let test_duplication () =
  let engine, net = make ~faults:{ Net.loss = 0.; duplicate = 1.0; jitter_ms = 0. } () in
  let received = collect net 1 in
  Net.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "delivered twice" 2 (List.length !received)

let test_jitter_reorders () =
  let engine, net = make ~faults:{ Net.loss = 0.; duplicate = 0.; jitter_ms = 200. } () in
  let order = ref [] in
  Net.register net ~node:1 (fun ~src:_ (Ping i) -> order := i :: !order);
  for i = 1 to 50 do
    Net.send net ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run engine;
  let arrived = List.rev !order in
  Alcotest.(check int) "all delivered" 50 (List.length arrived);
  Alcotest.(check bool) "some reordering happened" true (arrived <> List.init 50 (fun i -> i + 1))

let test_crash_drops_inbound () =
  let engine, net = make () in
  let received = collect net 1 in
  Net.crash net 1;
  Net.send net ~src:0 ~dst:1 (Ping 0);
  Engine.run engine;
  Alcotest.(check int) "nothing received" 0 (List.length !received)

let test_crash_drops_outbound () =
  let engine, net = make () in
  let received = collect net 1 in
  Net.crash net 0;
  Net.send net ~src:0 ~dst:1 (Ping 0);
  Engine.run engine;
  Alcotest.(check int) "nothing received" 0 (List.length !received);
  Alcotest.(check int) "not even counted" 0 (Msg_stats.remote_total (Net.stats net))

let test_in_flight_message_dropped_if_dest_crashes () =
  let engine, net = make () in
  let received = collect net 1 in
  Net.send net ~src:0 ~dst:1 (Ping 0);
  (* Crash the destination while the message is in flight. *)
  ignore (Engine.schedule engine ~delay:10. (fun () -> Net.crash net 1));
  Engine.run engine;
  Alcotest.(check int) "dropped at delivery" 0 (List.length !received)

let test_recovery_restores_delivery () =
  let engine, net = make () in
  let received = collect net 1 in
  Net.crash net 1;
  Net.recover net 1;
  Net.send net ~src:0 ~dst:1 (Ping 0);
  Engine.run engine;
  Alcotest.(check int) "received after recovery" 1 (List.length !received)

let test_status_watchers () =
  let _engine, net = make () in
  let log = ref [] in
  Net.on_status_change net ~node:2 (fun ~up ~wiped:_ -> log := up :: !log);
  Net.crash net 2;
  Net.crash net 2 (* idempotent: no second notification *);
  Net.recover net 2;
  Alcotest.(check (list bool)) "down then up" [ false; true ] (List.rev !log)

(* {2 Amnesia: wipe notification semantics} *)

let watch_wipes net node =
  let log = ref [] in
  Net.on_status_change net ~node (fun ~up ~wiped -> log := (up, wiped) :: !log);
  log

let test_failstop_recovery_not_wiped () =
  let _engine, net = make () in
  let log = watch_wipes net 1 in
  Net.crash net 1;
  Net.recover net 1;
  Alcotest.(check (list (pair bool bool)))
    "fail-stop keeps durable state" [ (false, false); (true, false) ] (List.rev !log)

let test_amnesia_recovery_wiped () =
  let _engine, net = make () in
  let log = watch_wipes net 1 in
  Net.crash_amnesia net 1;
  Net.recover net 1;
  Alcotest.(check (list (pair bool bool)))
    "wipe reported at crash and at recovery" [ (false, true); (true, true) ]
    (List.rev !log)

let test_wipe_pending_across_failstop () =
  (* An amnesia crash on an already-down node still wipes the disk; the
     eventual recovery must report it. *)
  let _engine, net = make () in
  let log = watch_wipes net 1 in
  Net.crash net 1;
  Net.crash_amnesia net 1;
  Net.recover net 1;
  Alcotest.(check (list (pair bool bool)))
    "wipe recorded while down" [ (false, false); (true, true) ] (List.rev !log)

let test_wipe_consumed_by_recovery () =
  (* The wipe flag is consumed: a later fail-stop cycle is clean. *)
  let _engine, net = make () in
  let log = watch_wipes net 1 in
  Net.crash_amnesia net 1;
  Net.recover net 1;
  Net.crash net 1;
  Net.recover net 1;
  Alcotest.(check (list (pair bool bool)))
    "second recovery is not wiped"
    [ (false, true); (true, true); (false, false); (true, false) ]
    (List.rev !log)

(* {2 Gray failure: per-node degradation} *)

let test_degrade_introspection () =
  let _engine, net = make () in
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "initially clear" None
    (Net.degraded net 1);
  Net.degrade_node net 1 ~delay_ms:25. ~loss:0.4;
  Alcotest.(check (option (pair (float 0.) (float 0.))))
    "set" (Some (25., 0.4)) (Net.degraded net 1);
  Net.clear_degrade net 1;
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "cleared" None (Net.degraded net 1);
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Net.degrade_node: negative delay") (fun () ->
      Net.degrade_node net 1 ~delay_ms:(-1.) ~loss:0.);
  Alcotest.check_raises "loss outside [0,1] rejected"
    (Invalid_argument "Net.degrade_node: loss outside [0, 1]") (fun () ->
      Net.degrade_node net 1 ~delay_ms:0. ~loss:1.5)

let test_degrade_adds_delay_both_directions () =
  let engine, net = make () in
  Net.degrade_node net 1 ~delay_ms:100. ~loss:0.;
  let arrivals = ref [] in
  Net.register net ~node:1 (fun ~src:_ _ -> arrivals := ("in", Engine.now engine) :: !arrivals);
  Net.register net ~node:0 (fun ~src:_ _ -> arrivals := ("out", Engine.now engine) :: !arrivals);
  Net.send net ~src:0 ~dst:1 (Ping 0);
  Net.send net ~src:1 ~dst:0 (Ping 1);
  Engine.run engine;
  (* Base server-server delay is 80 ms; the degraded endpoint adds its
     extra latency on every message it sends or receives. *)
  Alcotest.(check (float 1e-9)) "inbound delayed" 180. (List.assoc "in" !arrivals);
  Alcotest.(check (float 1e-9)) "outbound delayed" 180. (List.assoc "out" !arrivals)

let test_degrade_loss_without_unreachability () =
  let engine, net = make () in
  Net.degrade_node net 1 ~delay_ms:0. ~loss:1.0;
  let received = collect net 1 in
  Alcotest.(check bool) "still reachable" true (Net.reachable net ~src:0 ~dst:1);
  for _ = 1 to 10 do
    Net.send net ~src:0 ~dst:1 (Ping 0)
  done;
  Engine.run engine;
  Alcotest.(check int) "all dropped by gray loss" 0 (List.length !received);
  Net.clear_degrade net 1;
  Net.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "delivered once cleared" 1 (List.length !received)

let test_timer_skipped_when_down () =
  let engine, net = make () in
  let fired = ref false in
  ignore (Net.timer net ~node:0 ~delay_ms:10. (fun () -> fired := true));
  Net.crash net 0;
  Engine.run engine;
  Alcotest.(check bool) "timer skipped" false !fired

let test_timer_from_old_incarnation_skipped () =
  let engine, net = make () in
  let fired = ref false in
  ignore (Net.timer net ~node:0 ~delay_ms:10. (fun () -> fired := true));
  Net.crash net 0;
  Net.recover net 0;
  Engine.run engine;
  Alcotest.(check bool) "old incarnation timer skipped" false !fired

let test_timer_fires_normally () =
  let engine, net = make () in
  let fired_at = ref (-1.) in
  ignore (Net.timer net ~node:0 ~delay_ms:10. (fun () -> fired_at := Engine.now engine));
  Engine.run engine;
  Alcotest.(check (float 0.)) "fires at 10" 10. !fired_at

let test_service_time_fifo_queueing () =
  let engine, net = make () in
  Net.set_service_time net ~ms:10.;
  let deliveries = ref [] in
  Net.register net ~node:1 (fun ~src:_ (Ping i) -> deliveries := (i, Engine.now engine) :: !deliveries);
  (* Three messages arrive together at t=80; the node serves them one
     at a time: completions at 90, 100, 110. *)
  for i = 1 to 3 do
    Net.send net ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run engine;
  (match List.rev !deliveries with
  | [ (1, t1); (2, t2); (3, t3) ] ->
    Alcotest.(check (float 1e-9)) "first" 90. t1;
    Alcotest.(check (float 1e-9)) "second" 100. t2;
    Alcotest.(check (float 1e-9)) "third" 110. t3
  | _ -> Alcotest.fail "three deliveries in order expected")

let test_service_time_idle_resets () =
  let engine, net = make () in
  Net.set_service_time net ~ms:10.;
  let times = ref [] in
  Net.register net ~node:1 (fun ~src:_ _ -> times := Engine.now engine :: !times);
  Net.send net ~src:0 ~dst:1 (Ping 1);
  (* Second message sent long after the first completes: no queueing. *)
  ignore (Engine.schedule engine ~delay:500. (fun () -> Net.send net ~src:0 ~dst:1 (Ping 2)));
  Engine.run engine;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-9)) "first served" 90. t1;
    Alcotest.(check (float 1e-9)) "second not queued" 590. t2
  | _ -> Alcotest.fail "two deliveries expected"

let test_partition_blocks_cross_group () =
  let engine, net = make () in
  let received = collect net 3 in
  Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "0-1 reachable" true (Net.reachable net ~src:0 ~dst:1);
  Alcotest.(check bool) "0-3 blocked" false (Net.reachable net ~src:0 ~dst:3);
  Net.send net ~src:0 ~dst:3 (Ping 0);
  Net.send net ~src:2 ~dst:3 (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "only same-group delivered" 1 (List.length !received)

let test_heal () =
  let engine, net = make () in
  let received = collect net 3 in
  Net.partition net [ [ 0 ]; [ 1; 2; 3 ] ];
  Net.heal net;
  Net.send net ~src:0 ~dst:3 (Ping 0);
  Engine.run engine;
  Alcotest.(check int) "delivered after heal" 1 (List.length !received)

let test_unlisted_nodes_form_implicit_group () =
  let _engine, net = make () in
  Net.partition net [ [ 0 ] ];
  Alcotest.(check bool) "1 and 2 together" true (Net.reachable net ~src:1 ~dst:2);
  Alcotest.(check bool) "0 isolated" false (Net.reachable net ~src:0 ~dst:1)

(* {2 Per-link faults, one-way cuts, flapping} *)

let test_oneway_cut () =
  let engine, net = make () in
  let fwd = collect net 1 in
  let back = collect net 0 in
  Net.cut net ~src:0 ~dst:1;
  Alcotest.(check bool) "0->1 cut" false (Net.reachable net ~src:0 ~dst:1);
  Alcotest.(check bool) "1->0 still open" true (Net.reachable net ~src:1 ~dst:0);
  Net.send net ~src:0 ~dst:1 (Ping 0);
  Net.send net ~src:1 ~dst:0 (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "cut direction dropped" 0 (List.length !fwd);
  Alcotest.(check int) "reverse direction delivered" 1 (List.length !back)

let test_uncut_restores () =
  let engine, net = make () in
  let received = collect net 1 in
  Net.cut net ~src:0 ~dst:1;
  Net.uncut net ~src:0 ~dst:1;
  Alcotest.(check bool) "no longer cut" false (Net.is_cut net ~src:0 ~dst:1);
  Net.send net ~src:0 ~dst:1 (Ping 0);
  Engine.run engine;
  Alcotest.(check int) "delivered after uncut" 1 (List.length !received)

let test_link_fault_override () =
  let engine, net = make () in
  let to1 = collect net 1 in
  let to2 = collect net 2 in
  let back = collect net 0 in
  (* Only the 0->1 direction is lossy; the reverse direction and other
     links keep the (fault-free) global model. *)
  Net.set_link_faults net ~src:0 ~dst:1
    (Some { Net.loss = 1.0; duplicate = 0.; jitter_ms = 0. });
  Net.send net ~src:0 ~dst:1 (Ping 0);
  Net.send net ~src:1 ~dst:0 (Ping 1);
  Net.send net ~src:0 ~dst:2 (Ping 2);
  Engine.run engine;
  Alcotest.(check int) "overridden link lossy" 0 (List.length !to1);
  Alcotest.(check int) "reverse unaffected" 1 (List.length !back);
  Alcotest.(check int) "other links unaffected" 1 (List.length !to2);
  (* Clearing the override restores the global model. *)
  Net.set_link_faults net ~src:0 ~dst:1 None;
  Net.send net ~src:0 ~dst:1 (Ping 3);
  Engine.run engine;
  Alcotest.(check int) "restored" 1 (List.length !to1)

let test_flap_link () =
  let engine, net = make () in
  let probe = ref [] in
  let schedule_probe at =
    ignore
      (Engine.schedule engine ~delay:at (fun () ->
           probe := (at, Net.is_cut net ~src:0 ~dst:1) :: !probe))
  in
  (* 50 ms up / 50 ms down until t=480: up [0,50), down [50,100), ... *)
  Net.flap_link net ~src:0 ~dst:1 ~up_ms:50. ~down_ms:50. ~until_ms:480.;
  List.iter schedule_probe [ 25.; 75.; 125.; 600. ];
  Engine.run engine;
  let at t = List.assoc t !probe in
  Alcotest.(check bool) "up phase" false (at 25.);
  Alcotest.(check bool) "down phase" true (at 75.);
  Alcotest.(check bool) "up again" false (at 125.);
  Alcotest.(check bool) "restored after deadline" false (at 600.)

let test_heal_clears_cuts_and_flaps () =
  let engine, net = make () in
  Net.cut net ~src:0 ~dst:1;
  Net.flap_link net ~src:2 ~dst:3 ~up_ms:10. ~down_ms:10. ~until_ms:10_000.;
  Net.partition net [ [ 0 ] ];
  Net.heal net;
  Alcotest.(check bool) "cut cleared" true (Net.reachable net ~src:0 ~dst:1);
  Alcotest.(check bool) "partition cleared" true (Net.reachable net ~src:0 ~dst:2);
  (* The flap schedule is dead: the link stays up from now on. *)
  ignore
    (Engine.schedule engine ~delay:5_000. (fun () ->
         Alcotest.(check bool) "flap stopped" false (Net.is_cut net ~src:2 ~dst:3)));
  Engine.run engine

(* Property: [reachable] must agree with what [deliver_pending]
   actually does, across any interleaving of partitions, heals,
   one-way cuts, fail-stop and amnesia crash/recover, link flapping,
   and gray degradation (which slows and drops but must never sever:
   a degraded node stays reachable). *)
let prop_reachable_matches_delivery =
  QCheck.Test.make ~name:"reachable agrees with deliver_pending" ~count:100
    QCheck.(pair int64 (int_range 5 40))
    (fun (seed, steps) ->
      let engine = Engine.create ~seed () in
      let topo = Topology.make ~n_servers:4 ~n_clients:1 () in
      let net = Net.create engine topo ~classify () in
      let rng = Dq_util.Rng.create (Int64.add seed 17L) in
      let nodes = 5 in
      Net.set_manual net true;
      let ok = ref true in
      for _ = 1 to steps do
        (match Dq_util.Rng.int rng 10 with
        | 0 ->
          Net.cut net ~src:(Dq_util.Rng.int rng nodes) ~dst:(Dq_util.Rng.int rng nodes)
        | 1 ->
          Net.uncut net ~src:(Dq_util.Rng.int rng nodes) ~dst:(Dq_util.Rng.int rng nodes)
        | 2 -> Net.partition net [ [ Dq_util.Rng.int rng nodes ] ]
        | 3 -> Net.heal net
        | 4 -> Net.crash net (Dq_util.Rng.int rng nodes)
        | 5 -> Net.recover net (Dq_util.Rng.int rng nodes)
        | 6 -> Net.crash_amnesia net (Dq_util.Rng.int rng nodes)
        | 7 ->
          Net.degrade_node net
            (Dq_util.Rng.int rng nodes)
            ~delay_ms:(Dq_util.Rng.float rng 50.)
            ~loss:(Dq_util.Rng.float rng 1.)
        | 8 -> Net.clear_degrade net (Dq_util.Rng.int rng nodes)
        | 9 ->
          let src = Dq_util.Rng.int rng nodes in
          let dst = Dq_util.Rng.int rng nodes in
          if src <> dst then begin
            Net.flap_link net ~src ~dst ~up_ms:5. ~down_ms:5.
              ~until_ms:(Engine.now engine +. 40.);
            (* let a few flap phases elapse so probes see both states *)
            Engine.run ~until:(Engine.now engine +. Dq_util.Rng.float rng 60.) engine
          end
        | _ -> ());
        (* After every mutation, a probe on each ordered pair of live
           nodes must be delivered exactly when the directed link is
           reachable. *)
        for src = 0 to nodes - 1 do
          for dst = 0 to nodes - 1 do
            if src <> dst && Net.is_up net src && Net.is_up net dst then begin
              let delivered = ref false in
              Net.register net ~node:dst (fun ~src:_ _ -> delivered := true);
              Net.send net ~src ~dst (Ping 0);
              Net.deliver_pending net 0;
              if !delivered <> Net.reachable net ~src ~dst then ok := false
            end
          done
        done
      done;
      !ok)

let test_stats_by_label () =
  let engine, net = make () in
  ignore (collect net 1);
  Net.send net ~src:0 ~dst:1 (Ping 0);
  Net.send net ~src:0 ~dst:0 (Ping 0);
  Engine.run engine;
  let stats = Net.stats net in
  Alcotest.(check int) "remote" 1 (Msg_stats.remote_total stats);
  Alcotest.(check int) "local" 1 (Msg_stats.local_total stats);
  Alcotest.(check int) "total" 2 (Msg_stats.total stats);
  Alcotest.(check (list (pair string int))) "labels" [ ("ping", 1) ] (Msg_stats.by_label stats)

let () =
  Alcotest.run "net"
    [
      ( "delivery",
        [
          Alcotest.test_case "delay" `Quick test_delivery_and_delay;
          Alcotest.test_case "local" `Quick test_local_delivery;
          Alcotest.test_case "sender id" `Quick test_sender_id_passed;
        ] );
      ( "faults",
        [
          Alcotest.test_case "loss" `Quick test_loss;
          Alcotest.test_case "duplication" `Quick test_duplication;
          Alcotest.test_case "jitter reorders" `Quick test_jitter_reorders;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "inbound dropped" `Quick test_crash_drops_inbound;
          Alcotest.test_case "outbound dropped" `Quick test_crash_drops_outbound;
          Alcotest.test_case "in-flight dropped" `Quick
            test_in_flight_message_dropped_if_dest_crashes;
          Alcotest.test_case "recovery" `Quick test_recovery_restores_delivery;
          Alcotest.test_case "status watchers" `Quick test_status_watchers;
          Alcotest.test_case "timer skipped when down" `Quick test_timer_skipped_when_down;
          Alcotest.test_case "old incarnation timer" `Quick
            test_timer_from_old_incarnation_skipped;
          Alcotest.test_case "timer fires" `Quick test_timer_fires_normally;
        ] );
      ( "amnesia",
        [
          Alcotest.test_case "fail-stop not wiped" `Quick test_failstop_recovery_not_wiped;
          Alcotest.test_case "amnesia wiped" `Quick test_amnesia_recovery_wiped;
          Alcotest.test_case "wipe pending across fail-stop" `Quick
            test_wipe_pending_across_failstop;
          Alcotest.test_case "wipe consumed by recovery" `Quick test_wipe_consumed_by_recovery;
        ] );
      ( "gray degradation",
        [
          Alcotest.test_case "introspection" `Quick test_degrade_introspection;
          Alcotest.test_case "adds delay both directions" `Quick
            test_degrade_adds_delay_both_directions;
          Alcotest.test_case "loss without unreachability" `Quick
            test_degrade_loss_without_unreachability;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "blocks cross group" `Quick test_partition_blocks_cross_group;
          Alcotest.test_case "heal" `Quick test_heal;
          Alcotest.test_case "implicit group" `Quick test_unlisted_nodes_form_implicit_group;
        ] );
      ( "links",
        [
          Alcotest.test_case "one-way cut" `Quick test_oneway_cut;
          Alcotest.test_case "uncut restores" `Quick test_uncut_restores;
          Alcotest.test_case "per-link fault override" `Quick test_link_fault_override;
          Alcotest.test_case "flapping" `Quick test_flap_link;
          Alcotest.test_case "heal clears cuts and flaps" `Quick
            test_heal_clears_cuts_and_flaps;
          QCheck_alcotest.to_alcotest prop_reachable_matches_delivery;
        ] );
      ("stats", [ Alcotest.test_case "by label" `Quick test_stats_by_label ]);
      ( "queueing",
        [
          Alcotest.test_case "fifo service" `Quick test_service_time_fifo_queueing;
          Alcotest.test_case "idle resets" `Quick test_service_time_idle_resets;
        ] );
    ]
