(* Robustness: the server state machines must tolerate arbitrary
   (well-typed) message sequences — unexpected, duplicated, stale or
   contradictory — without raising, and their monotone state (logical
   clocks, acknowledgment floors, lease expiries) must never regress.
   The network can reorder and duplicate arbitrarily, so handlers are
   exposed to exactly this. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Clock = Dq_sim.Clock
module Config = Dq_core.Config
module M = Dq_core.Message
module Iqs = Dq_core.Iqs_server
module Oqs = Dq_core.Oqs_server
module Rng = Dq_util.Rng
open Dq_storage

let keys = [ Key.make ~volume:0 ~index:0; Key.make ~volume:0 ~index:1; Key.make ~volume:1 ~index:0 ]

let random_key rng = List.nth keys (Rng.int rng 3)

let random_lc rng = Lc.make ~count:(Rng.int rng 8) ~node:(Rng.int rng 4)

let random_grant rng =
  {
    M.g_key = random_key rng;
    g_epoch = Rng.int rng 3;
    g_lc = random_lc rng;
    g_value = String.make (Rng.int rng 5) 'x';
    g_lease_ms = (if Rng.bool rng then infinity else float_of_int (Rng.int rng 2000));
    g_t0 = float_of_int (Rng.int rng 1000);
  }

(* Any protocol message with random contents. *)
let random_message rng =
  match Rng.int rng 12 with
  | 0 -> M.Lc_read_req { op = Rng.int rng 5 }
  | 1 ->
    M.Iqs_write_req
      { op = Rng.int rng 5; key = random_key rng; value = "w"; lc = random_lc rng }
  | 2 -> M.Obj_renew_req { key = random_key rng; t0 = float_of_int (Rng.int rng 1000) }
  | 3 ->
    M.Vol_renew_req
      {
        volume = Rng.int rng 2;
        t0 = float_of_int (Rng.int rng 1000);
        want = (if Rng.bool rng then Some (random_key rng) else None);
        epoch = Rng.int rng 3;
      }
  | 4 -> M.Vol_renew_ack { volume = Rng.int rng 2; upto = random_lc rng }
  | 5 -> M.Inval_ack { key = random_key rng; lc = random_lc rng }
  | 6 -> M.Inval { key = random_key rng; lc = random_lc rng }
  | 7 -> M.Obj_renew_reply { grant = random_grant rng }
  | 8 ->
    M.Vol_renew_reply
      {
        volume = Rng.int rng 2;
        lease_ms = float_of_int (1 + Rng.int rng 2000);
        epoch = Rng.int rng 3;
        t0 = float_of_int (Rng.int rng 1000);
        delayed = List.init (Rng.int rng 3) (fun _ -> (random_key rng, random_lc rng));
        grant = (if Rng.bool rng then Some (random_grant rng) else None);
      }
  | 9 ->
    M.Vols_renew_req
      { volumes = [ (0, Rng.int rng 3); (1, 0) ]; t0 = float_of_int (Rng.int rng 1000) }
  | 10 ->
    M.Vols_renew_reply
      {
        t0 = float_of_int (Rng.int rng 1000);
        lease_ms = float_of_int (1 + Rng.int rng 2000);
        grants = [ (Rng.int rng 2, Rng.int rng 3, [ (random_key rng, random_lc rng) ]) ];
      }
  | _ -> M.Oqs_read_req { op = Rng.int rng 5; key = random_key rng }

let world () =
  let engine = Engine.create ~seed:111L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:1 () in
  let servers = Topology.servers topology in
  let config = Config.dqvl ~servers ~volume_lease_ms:500. ~proactive_renew:false () in
  let net = Net.create engine topology ~classify:M.classify () in
  List.iter (fun node -> Net.register net ~node (fun ~src:_ _ -> ())) [ 0; 1; 2; 3 ];
  (engine, net, config)

let prop_iqs_survives_random_messages =
  QCheck.Test.make ~name:"IQS survives arbitrary message sequences" ~count:100
    QCheck.(pair int64 (int_range 10 120))
    (fun (seed, n) ->
      let engine, net, config = world () in
      let rng = Rng.create seed in
      let iqs = Iqs.create ~net ~clock:(Clock.perfect engine) ~config ~me:0 in
      let clock_floor = ref Lc.zero in
      let ok = ref true in
      for _ = 1 to n do
        let src = 1 + Rng.int rng 2 in
        Iqs.handle iqs ~src (random_message rng);
        (* The global logical clock never regresses. *)
        if Lc.(Iqs.logical_clock iqs < !clock_floor) then ok := false;
        clock_floor := Iqs.logical_clock iqs;
        (* Drain any network activity the message triggered. *)
        Engine.run ~until:(Engine.now engine +. 50.) engine
      done;
      Engine.run ~until:(Engine.now engine +. 100_000.) engine;
      !ok)

let prop_oqs_survives_random_messages =
  QCheck.Test.make ~name:"OQS survives arbitrary message sequences" ~count:100
    QCheck.(pair int64 (int_range 10 120))
    (fun (seed, n) ->
      let engine, net, config = world () in
      let rng = Rng.create seed in
      let oqs =
        Oqs.create ~net ~clock:(Clock.perfect engine) ~config ~rng:(Engine.split_rng engine)
          ~me:0
      in
      let value_floor = ref Lc.zero in
      let ok = ref true in
      for _ = 1 to n do
        let src = 1 + Rng.int rng 2 in
        Oqs.handle oqs ~src (random_message rng);
        (* The cached value's clock never regresses. *)
        let lc = (Oqs.cached oqs (List.hd keys)).Versioned.lc in
        if Lc.(lc < !value_floor) then ok := false;
        value_floor := lc;
        Engine.run ~until:(Engine.now engine +. 50.) engine
      done;
      Oqs.quiesce oqs;
      Engine.run ~until:(Engine.now engine +. 100_000.) engine;
      !ok)

let prop_iqs_ack_floor_monotone =
  QCheck.Test.make ~name:"IQS acknowledgment floors are monotone" ~count:100
    QCheck.(pair int64 (small_list (pair (int_range 0 7) (int_range 0 3))))
    (fun (seed, acks) ->
      let engine, net, config = world () in
      ignore seed;
      let iqs = Iqs.create ~net ~clock:(Clock.perfect engine) ~config ~me:0 in
      let key = List.hd keys in
      let floor = ref Lc.zero in
      List.for_all
        (fun (count, node) ->
          Iqs.handle iqs ~src:1 (M.Inval_ack { key; lc = Lc.make ~count ~node });
          let current = Iqs.last_ack_lc iqs key ~oqs:1 in
          let monotone = Lc.(current >= !floor) in
          floor := current;
          monotone)
        acks)

let () =
  Alcotest.run "robustness"
    [
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_iqs_survives_random_messages;
            prop_oqs_survives_random_messages;
            prop_iqs_ack_floor_monotone;
          ] );
    ]
