(* Bayou-style session guarantees (the paper's reference [26]):
   ROWA-Async with per-client floors gives read-your-writes and
   monotonic reads without paying for regular semantics. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module BC = Dq_proto.Base_cluster
module C = Dq_harness.Regular_checker
module H = Dq_harness.History
module Driver = Dq_harness.Driver
module Spec = Dq_workload.Spec
module R = Dq_intf.Replication
open Dq_storage

(* --- checker unit tests -------------------------------------------------- *)

let key = Key.make ~volume:0 ~index:0

let mk ~id ~client ~kind ~value ~c ~invoked ~responded =
  {
    H.id;
    client;
    key;
    kind;
    value;
    lc = Some (Lc.make ~count:c ~node:0);
    invoked;
    responded = Some responded;
    gave_up = None;
  }

let test_checker_detects_ryw () =
  let ops =
    [
      mk ~id:0 ~client:1 ~kind:H.Write ~value:"mine" ~c:5 ~invoked:0. ~responded:10.;
      (* The same client then reads an older version. *)
      mk ~id:1 ~client:1 ~kind:H.Read ~value:"old" ~c:3 ~invoked:20. ~responded:30.;
    ]
  in
  let r = C.check_sessions ops in
  Alcotest.(check int) "ryw" 1 r.C.ryw_violations;
  Alcotest.(check int) "monotonic" 0 r.C.monotonic_violations

let test_checker_detects_monotonic () =
  let ops =
    [
      mk ~id:0 ~client:1 ~kind:H.Read ~value:"new" ~c:5 ~invoked:0. ~responded:10.;
      mk ~id:1 ~client:1 ~kind:H.Read ~value:"old" ~c:3 ~invoked:20. ~responded:30.;
    ]
  in
  let r = C.check_sessions ops in
  Alcotest.(check int) "ryw" 0 r.C.ryw_violations;
  Alcotest.(check int) "monotonic" 1 r.C.monotonic_violations

let test_checker_other_clients_irrelevant () =
  let ops =
    [
      mk ~id:0 ~client:1 ~kind:H.Write ~value:"theirs" ~c:9 ~invoked:0. ~responded:10.;
      (* A different client reading older data is not a session issue. *)
      mk ~id:1 ~client:2 ~kind:H.Read ~value:"old" ~c:3 ~invoked:20. ~responded:30.;
    ]
  in
  let r = C.check_sessions ops in
  Alcotest.(check int) "ryw" 0 r.C.ryw_violations;
  Alcotest.(check int) "monotonic" 0 r.C.monotonic_violations

(* --- protocol-level ------------------------------------------------------- *)

(* A mobile client: writes at its home edge server, then (redirected)
   reads at a distant one before propagation can land. *)
let mobile_client_scenario protocol =
  let engine = Engine.create ~seed:71L () in
  (* Server-to-server propagation (500 ms) is slower than the client's
     hop to a distant edge server (86 ms), so a mobile client can beat
     its own write's propagation - the classic session-guarantee gap. *)
  let topology = Topology.make ~n_servers:5 ~n_clients:1 ~server_ms:500. () in
  let cluster = BC.create engine topology protocol in
  let api = BC.api cluster in
  let observed = ref [] in
  api.R.submit_write ~client:5 ~server:0 key "v1" (fun w ->
      ignore w;
      (* Immediately read via a distant server: the propagation (80 ms)
         has not arrived yet. *)
      api.R.submit_read ~client:5 ~server:3 key (fun r ->
          observed := ("read1", r.R.read_value) :: !observed;
          api.R.submit_read ~client:5 ~server:3 key (fun r ->
              observed := ("read2", r.R.read_value) :: !observed)));
  Engine.run ~until:60_000. engine;
  api.R.quiesce ();
  List.rev !observed

let test_plain_rowa_async_breaks_ryw () =
  match mobile_client_scenario (BC.Rowa_async { anti_entropy_ms = 5_000. }) with
  | (_, first) :: _ ->
    Alcotest.(check string) "client misses its own write" "" first
  | [] -> Alcotest.fail "no reads completed"

let test_session_variant_waits_for_own_write () =
  match mobile_client_scenario (BC.Rowa_async_session { anti_entropy_ms = 5_000. }) with
  | [ (_, first); (_, second) ] ->
    Alcotest.(check string) "read-your-writes" "v1" first;
    Alcotest.(check string) "monotonic" "v1" second
  | _ -> Alcotest.fail "two reads expected"

let run_workload protocol =
  let engine = Engine.create ~seed:72L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:3 ~server_ms:500. () in
  let cluster = BC.create engine topology protocol in
  let api = BC.api cluster in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.4;
      locality = 0.4 (* clients hop between edge servers *);
      sharing = Spec.Shared_uniform { objects = 2 };
    }
  in
  let config = { (Driver.default_config spec) with Driver.ops_per_client = 80 } in
  Driver.run engine topology api config

let test_workload_session_guarantees () =
  let plain = run_workload (BC.Rowa_async { anti_entropy_ms = 500. }) in
  let session = run_workload (BC.Rowa_async_session { anti_entropy_ms = 500. }) in
  let plain_sessions = C.check_sessions plain.Driver.history in
  let session_sessions = C.check_sessions session.Driver.history in
  Alcotest.(check bool) "plain rowa-async violates session guarantees" true
    (plain_sessions.C.ryw_violations + plain_sessions.C.monotonic_violations > 0);
  Alcotest.(check int) "session variant: no ryw" 0 session_sessions.C.ryw_violations;
  Alcotest.(check int) "session variant: no monotonic" 0
    session_sessions.C.monotonic_violations;
  Alcotest.(check int) "session variant completes everything" 0 session.Driver.failed;
  (* Still not regular: cross-client staleness remains possible. *)
  ignore (C.check session.Driver.history)

let test_quorum_protocols_satisfy_sessions () =
  List.iter
    (fun protocol ->
      let result = run_workload protocol in
      let s = C.check_sessions result.Driver.history in
      Alcotest.(check int) "ryw" 0 s.C.ryw_violations;
      Alcotest.(check int) "monotonic" 0 s.C.monotonic_violations)
    [ BC.Majority_quorum; BC.Primary_backup { primary = 4 } ]

let () =
  Alcotest.run "sessions"
    [
      ( "checker",
        [
          Alcotest.test_case "ryw" `Quick test_checker_detects_ryw;
          Alcotest.test_case "monotonic" `Quick test_checker_detects_monotonic;
          Alcotest.test_case "cross-client" `Quick test_checker_other_clients_irrelevant;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "plain breaks ryw" `Quick test_plain_rowa_async_breaks_ryw;
          Alcotest.test_case "session variant waits" `Quick
            test_session_variant_waits_for_own_write;
          Alcotest.test_case "workload comparison" `Slow test_workload_session_guarantees;
          Alcotest.test_case "quorum protocols pass" `Slow
            test_quorum_protocols_satisfy_sessions;
        ] );
    ]
