(* The quorum-system optimizer: golden frontier on the reference 5-node
   heterogeneous topology, the oracle cross-check (every frontier
   point's reported unavailability must match the independent
   Availability.enumerate walk), the Pareto non-dominance invariant,
   and determinism. *)

module Qs = Dq_quorum.Quorum_system
module Strategy = Dq_quorum.Strategy
module Av = Dq_quorum.Availability
module Opt = Dq_quorum.Optimizer

(* Three fast, reliable nodes and two slow, flaky ones — the asymmetric
   edge topology the optimizer exists for. *)
let nodes =
  [
    { Opt.id = 0; fail_prob = 0.01; latency_ms = 10. };
    { Opt.id = 1; fail_prob = 0.01; latency_ms = 10. };
    { Opt.id = 2; fail_prob = 0.01; latency_ms = 10. };
    { Opt.id = 3; fail_prob = 0.05; latency_ms = 80. };
    { Opt.id = 4; fail_prob = 0.05; latency_ms = 80. };
  ]

let memo = lazy (Opt.search ~read_fraction:0.9 ~max_votes:3 ~nodes ())

let search () = Lazy.force memo

let test_golden_frontier () =
  let result = search () in
  Alcotest.(check int) "candidates" 5587 result.Opt.candidates;
  Alcotest.(check bool) "not truncated" false result.Opt.truncated;
  Alcotest.(check int) "frontier size" 16 (List.length result.Opt.frontier);
  (* The two ends of the frontier: lowest-load point first, and the
     plain majority latency-optimal point closing the list. *)
  let first = List.hd result.Opt.frontier in
  Alcotest.(check string) "first point" "wv[1,1,1,1,1]r1w5" (Qs.name first.Opt.system);
  Alcotest.(check string) "first kind" "load-optimal" first.Opt.kind;
  Alcotest.check (Alcotest.float 1e-9) "first load" 0.28 first.Opt.metrics.Opt.load;
  let last = List.nth result.Opt.frontier 15 in
  Alcotest.(check string) "last point" "wv[1,1,1,1,1]r3w3" (Qs.name last.Opt.system);
  Alcotest.(check string) "last kind" "latency-optimal" last.Opt.kind;
  Alcotest.(check int) "last fault tolerance" 2 last.Opt.metrics.Opt.fault_tolerance;
  Alcotest.check (Alcotest.float 1e-9) "last latency" 10. last.Opt.metrics.Opt.latency_ms

(* Oracle: the optimizer computes unavailability from its own
   minimal-quorum lists; Availability.enumerate walks all 2^n live/dead
   states of the predicate. The two paths must agree on every frontier
   point. *)
let test_availability_oracle () =
  let result = search () in
  let p id = (List.nth nodes id).Opt.fail_prob in
  List.iter
    (fun (pt : Opt.point) ->
      let name = Qs.name pt.Opt.system in
      Alcotest.check (Alcotest.float 1e-12)
        (name ^ " read unavailability")
        (Av.unavailability_p pt.Opt.system ~mode:Av.Read ~p)
        pt.Opt.metrics.Opt.read_unavailability;
      Alcotest.check (Alcotest.float 1e-12)
        (name ^ " write unavailability")
        (Av.unavailability_p pt.Opt.system ~mode:Av.Write ~p)
        pt.Opt.metrics.Opt.write_unavailability)
    result.Opt.frontier

let test_pareto_invariant () =
  let result = search () in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (a == b) then
            Alcotest.(check bool)
              (Qs.name a.Opt.system ^ " does not dominate " ^ Qs.name b.Opt.system)
              false (Opt.dominates a b))
        result.Opt.frontier)
    result.Opt.frontier

let test_deterministic () =
  (* A genuinely fresh second search (not the memoized one). *)
  let fresh = Opt.search ~read_fraction:0.9 ~max_votes:3 ~nodes () in
  Alcotest.(check string) "two searches agree" (Opt.to_json (search ()))
    (Opt.to_json fresh)

let test_strategies_are_valid () =
  let result = search () in
  List.iter
    (fun (pt : Opt.point) ->
      let check_strategy s mode =
        match Strategy.distribution s with
        | None -> Alcotest.fail "optimizer strategies are explicit"
        | Some dist ->
          let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
          Alcotest.check (Alcotest.float 1e-9) "probs sum to 1" 1. total;
          List.iter
            (fun (q, _) ->
              Alcotest.(check bool) "support is a quorum" true
                (Qs.is_quorum_list pt.Opt.system mode q))
            dist
      in
      check_strategy pt.Opt.read_strategy Qs.Read;
      check_strategy pt.Opt.write_strategy Qs.Write)
    result.Opt.frontier

let test_winner () =
  let result = search () in
  match Opt.winner result with
  | None -> Alcotest.fail "non-empty frontier has a winner"
  | Some w ->
    Alcotest.(check bool) "winner tolerates a failure" true
      (w.Opt.metrics.Opt.fault_tolerance >= 1);
    (* Highest capacity among fault-tolerant frontier points. *)
    List.iter
      (fun (pt : Opt.point) ->
        if pt.Opt.metrics.Opt.fault_tolerance >= 1 then
          Alcotest.(check bool) "winner capacity maximal" true
            (w.Opt.metrics.Opt.capacity >= pt.Opt.metrics.Opt.capacity -. 1e-12))
      result.Opt.frontier

(* The heterogeneous enumeration collapses to the homogeneous closed
   forms when every node gets the same probability. *)
let test_hetero_matches_homogeneous () =
  let qs = Qs.majority (List.init 5 Fun.id) in
  List.iter
    (fun mode ->
      List.iter
        (fun p ->
          Alcotest.check (Alcotest.float 1e-15) "uniform p agrees"
            (Av.unavailability qs ~mode ~p)
            (Av.unavailability_p qs ~mode ~p:(fun _ -> p)))
        [ 0.01; 0.1; 0.5 ])
    [ Av.Read; Av.Write ]

let () =
  Alcotest.run "quorum_opt"
    [
      ( "optimizer",
        [
          Alcotest.test_case "golden frontier" `Quick test_golden_frontier;
          Alcotest.test_case "availability oracle" `Quick test_availability_oracle;
          Alcotest.test_case "pareto invariant" `Quick test_pareto_invariant;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "strategies valid" `Quick test_strategies_are_valid;
          Alcotest.test_case "winner" `Quick test_winner;
        ] );
      ( "availability",
        [
          Alcotest.test_case "hetero vs homogeneous" `Quick
            test_hetero_matches_homogeneous;
        ] );
    ]
