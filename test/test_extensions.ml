(* Extensions beyond the paper's headline figures: staleness metrics,
   crash/recovery churn, the atomicity checker and the atomic (read-
   impose) protocol variants, and availability-aware request routing. *)

module E = Dq_harness.Experiment
module H = Dq_harness.History
module C = Dq_harness.Regular_checker
module S = Dq_harness.Staleness
module Churn = Dq_harness.Churn
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Spec = Dq_workload.Spec
open Dq_storage

let key = Key.make ~volume:0 ~index:0

let lc c = Some (Lc.make ~count:c ~node:0)

let mk ~id ~kind ~value ~c ~invoked ~responded =
  { H.id; client = 0; key; kind; value; lc = lc c; invoked; responded; gave_up = None }

(* --- staleness metrics -------------------------------------------------- *)

let test_staleness_none_when_fresh () =
  let ops =
    [
      mk ~id:0 ~kind:H.Write ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      mk ~id:1 ~kind:H.Read ~value:"a" ~c:1 ~invoked:20. ~responded:(Some 30.);
    ]
  in
  let r = S.measure ops in
  Alcotest.(check int) "checked" 1 r.S.checked;
  Alcotest.(check int) "stale" 0 (List.length r.S.stale);
  Alcotest.(check (float 0.)) "fraction" 0. (S.stale_fraction r)

let test_staleness_measured () =
  let ops =
    [
      mk ~id:0 ~kind:H.Write ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      mk ~id:1 ~kind:H.Write ~value:"b" ~c:2 ~invoked:20. ~responded:(Some 30.);
      mk ~id:2 ~kind:H.Write ~value:"c" ~c:3 ~invoked:40. ~responded:(Some 50.);
      (* Read at 100..110 returns "a": 2 versions behind; the freshest
         missed write ("c") completed at 50, so 60 ms behind. *)
      mk ~id:3 ~kind:H.Read ~value:"a" ~c:1 ~invoked:100. ~responded:(Some 110.);
    ]
  in
  let r = S.measure ops in
  (match r.S.stale with
  | [ s ] ->
    Alcotest.(check (float 1e-9)) "behind" 60. s.S.behind_ms;
    Alcotest.(check int) "versions" 2 s.S.versions_behind
  | _ -> Alcotest.fail "one stale read expected");
  Alcotest.(check (float 1e-9)) "max" 60. r.S.max_behind_ms;
  Alcotest.(check int) "max versions" 2 r.S.max_versions_behind

let test_staleness_concurrent_write_not_stale () =
  (* A read overlapping the newer write is not stale. *)
  let ops =
    [
      mk ~id:0 ~kind:H.Write ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      mk ~id:1 ~kind:H.Write ~value:"b" ~c:2 ~invoked:50. ~responded:(Some 90.);
      mk ~id:2 ~kind:H.Read ~value:"a" ~c:1 ~invoked:60. ~responded:(Some 70.);
    ]
  in
  Alcotest.(check int) "not stale" 0 (List.length (S.measure ops).S.stale)

(* --- churn --------------------------------------------------------------- *)

let test_churn_periods_for () =
  let mttf, mttr = Churn.periods_for ~p:0.1 ~cycle_ms:1000. in
  Alcotest.(check (float 1e-9)) "mttf" 900. mttf;
  Alcotest.(check (float 1e-9)) "mttr" 100. mttr

let test_churn_downtime_fraction () =
  let engine = Engine.create ~seed:5L () in
  let up = Array.make 4 true in
  let churn =
    Churn.install engine
      ~crash:(fun i -> up.(i) <- false)
      ~recover:(fun i -> up.(i) <- true)
      ~servers:[ 0; 1; 2; 3 ] ~mttf_ms:900. ~mttr_ms:100.
  in
  Engine.run ~until:2_000_000. engine;
  (* Long run: each node should be down about 10% of the time. *)
  List.iter
    (fun node ->
      let f = Churn.downtime_fraction churn ~node in
      Alcotest.(check bool)
        (Printf.sprintf "node %d downtime %.3f near 0.1" node f)
        true
        (f > 0.05 && f < 0.16))
    [ 0; 1; 2; 3 ];
  Churn.stop churn

let test_churn_stop () =
  let engine = Engine.create ~seed:6L () in
  let events = ref 0 in
  let churn =
    Churn.install engine
      ~crash:(fun _ -> incr events)
      ~recover:(fun _ -> incr events)
      ~servers:[ 0 ] ~mttf_ms:100. ~mttr_ms:100.
  in
  Engine.run ~until:1_000. engine;
  Churn.stop churn;
  let before = !events in
  Engine.run ~until:10_000. engine;
  (* At most one already-scheduled transition fires after stop. *)
  Alcotest.(check bool) "stopped" true (!events <= before + 1)

(* --- atomicity checker ---------------------------------------------------- *)

let test_inversion_detected () =
  let ops =
    [
      mk ~id:0 ~kind:H.Write ~value:"old" ~c:1 ~invoked:0. ~responded:(Some 10.);
      mk ~id:1 ~kind:H.Write ~value:"new" ~c:2 ~invoked:20. ~responded:(Some 200.);
      (* Both reads overlap the second write, so each alone is regular;
         but read1 sees "new" and the later read2 sees "old". *)
      mk ~id:2 ~kind:H.Read ~value:"new" ~c:2 ~invoked:30. ~responded:(Some 50.);
      mk ~id:3 ~kind:H.Read ~value:"old" ~c:1 ~invoked:60. ~responded:(Some 80.);
    ]
  in
  Alcotest.(check bool) "regular" true (C.is_regular ops);
  Alcotest.(check int) "one inversion" 1 (List.length (C.new_old_inversions ops));
  Alcotest.(check bool) "not atomic" false (C.is_atomic ops)

let test_no_inversion_when_monotone () =
  let ops =
    [
      mk ~id:0 ~kind:H.Write ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      mk ~id:1 ~kind:H.Read ~value:"a" ~c:1 ~invoked:20. ~responded:(Some 30.);
      mk ~id:2 ~kind:H.Write ~value:"b" ~c:2 ~invoked:40. ~responded:(Some 50.);
      mk ~id:3 ~kind:H.Read ~value:"b" ~c:2 ~invoked:60. ~responded:(Some 70.);
    ]
  in
  Alcotest.(check int) "no inversions" 0 (List.length (C.new_old_inversions ops));
  Alcotest.(check bool) "atomic" true (C.is_atomic ops)

let test_overlapping_reads_not_inverted () =
  (* Overlapping reads may disagree without violating atomicity. *)
  let ops =
    [
      mk ~id:0 ~kind:H.Write ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      mk ~id:1 ~kind:H.Write ~value:"b" ~c:2 ~invoked:20. ~responded:(Some 100.);
      mk ~id:2 ~kind:H.Read ~value:"b" ~c:2 ~invoked:30. ~responded:(Some 60.);
      mk ~id:3 ~kind:H.Read ~value:"a" ~c:1 ~invoked:50. ~responded:(Some 80.);
    ]
  in
  Alcotest.(check int) "no inversions" 0 (List.length (C.new_old_inversions ops))

(* --- atomic protocol variants ---------------------------------------------- *)

let concurrent_run builder =
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let engine = Engine.create ~seed:31L () in
  let instance = builder.Registry.build engine topology () in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.4;
      sharing = Spec.Shared_uniform { objects = 1 };
    }
  in
  let config = { (Driver.default_config spec) with Driver.ops_per_client = 80 } in
  Driver.run engine topology instance.Registry.api config

let test_atomic_variants_have_no_inversions () =
  List.iter
    (fun builder ->
      let result = concurrent_run builder in
      Alcotest.(check int)
        (builder.Registry.name ^ " completes")
        0 result.Driver.failed;
      Alcotest.(check bool)
        (builder.Registry.name ^ " regular")
        true
        (C.is_regular result.Driver.history);
      Alcotest.(check int)
        (builder.Registry.name ^ " inversions")
        0
        (List.length (C.new_old_inversions result.Driver.history)))
    [ Registry.atomic_majority; Registry.dqvl_atomic () ]

let test_atomicity_costs_a_round_trip () =
  let rows = E.ablation_atomic ~ops:60 () in
  let find name =
    match List.find_opt (fun (r : E.response_row) -> r.E.protocol = name) rows with
    | Some r -> r
    | None -> Alcotest.failf "missing %s" name
  in
  let dq = find "dqvl" and dqa = find "dqvl-atomic" in
  let mj = find "majority" and mja = find "atomic-majority" in
  Alcotest.(check bool) "dqvl atomic reads cost more" true (dqa.E.read_ms > 3. *. dq.E.read_ms);
  Alcotest.(check bool) "majority atomic reads cost ~2x" true
    (mja.E.read_ms > 1.5 *. mj.E.read_ms);
  List.iter (fun (r : E.response_row) -> Alcotest.(check int) (r.E.protocol ^ " regular") 0 r.E.violations) rows

(* --- measured availability and redirection --------------------------------- *)

let test_fig8_measured_ordering () =
  let rows = E.fig8_measured ~ops:80 () in
  let u name =
    match List.assoc_opt name rows with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check bool) "rowa-async most available" true (u "rowa-async" <= u "dqvl");
  Alcotest.(check bool) "dqvl beats rowa" true (u "dqvl" < u "rowa");
  Alcotest.(check bool) "majority beats rowa" true (u "majority" < u "rowa");
  Alcotest.(check bool) "all bounded" true (List.for_all (fun (_, v) -> v >= 0. && v <= 1.) rows)

let test_redirection_restores_availability () =
  (* Crash the closest server of every client; with redirection the
     majority protocol still serves everything, without it nothing
     completes (requests go to the dead front end). *)
  let run ~redirect =
    let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
    let engine = Engine.create ~seed:8L () in
    let instance = Registry.majority.Registry.build engine topology () in
    instance.Registry.api.Dq_intf.Replication.crash_server 0;
    instance.Registry.api.Dq_intf.Replication.crash_server 1;
    let config =
      {
        (Driver.default_config Spec.default) with
        Driver.ops_per_client = 10;
        timeout_ms = 2_000.;
        redirect_to_up = redirect;
      }
    in
    Driver.run engine topology instance.Registry.api config
  in
  let with_redirect = run ~redirect:true in
  let without = run ~redirect:false in
  Alcotest.(check int) "with redirection all complete" 0 with_redirect.Driver.failed;
  Alcotest.(check int) "without redirection all fail" without.Driver.issued
    without.Driver.failed

let test_open_loop_driver () =
  (* Open arrivals: all operations settle, latencies recorded, and the
     issue count matches even though completions do not gate issuance. *)
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let engine = Engine.create ~seed:12L () in
  let instance = Registry.majority.Registry.build engine topology () in
  let spec = { Spec.default with Spec.arrival = Spec.Open { rate_per_s = 50. } } in
  let config = { (Driver.default_config spec) with Driver.ops_per_client = 30 } in
  let r = Driver.run engine topology instance.Registry.api config in
  Alcotest.(check int) "issued" 60 r.Driver.issued;
  Alcotest.(check int) "all settled" 60 (r.Driver.completed + r.Driver.failed);
  Alcotest.(check int) "no failures" 0 r.Driver.failed

let test_service_time_queueing () =
  (* With a service-time model, higher load means higher latency. *)
  let run rate =
    let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
    let engine = Engine.create ~seed:13L () in
    let instance = Registry.majority.Registry.build engine topology () in
    instance.Registry.set_service_time 2.;
    let spec = { Spec.default with Spec.arrival = Spec.Open { rate_per_s = rate } } in
    let config =
      { (Driver.default_config spec) with Driver.ops_per_client = 100; timeout_ms = 20_000. }
    in
    let r = Driver.run engine topology instance.Registry.api config in
    Dq_util.Stats.mean r.Driver.all_latency
  in
  let light = run 5. and heavy = run 120. in
  Alcotest.(check bool)
    (Printf.sprintf "queueing delay grows (%.1f -> %.1f ms)" light heavy)
    true
    (heavy > light +. 20.)

let test_saturation_shape () =
  match Dq_harness.Experiment.saturation ~ops:150 ~rates:[ 20.; 200. ] () with
  | [ (_, low); (_, high) ] ->
    let at series name = List.assoc name series in
    Alcotest.(check bool) "dqvl saturates later than majority" true
      (at high "dqvl" < at high "majority");
    Alcotest.(check bool) "majority degrades under load" true
      (at high "majority" > at low "majority" +. 50.)
  | _ -> Alcotest.fail "two rates expected"

let test_staleness_ablation_shape () =
  let rows = E.ablation_staleness () in
  let stale_of prefix =
    match List.find_opt (fun r -> r.E.s_protocol = prefix) rows with
    | Some r -> r
    | None -> Alcotest.failf "missing %s" prefix
  in
  let dqvl = stale_of "dqvl" in
  let majority = stale_of "majority" in
  Alcotest.(check (float 0.)) "dqvl never stale" 0. dqvl.E.s_stale_fraction;
  Alcotest.(check (float 0.)) "majority never stale" 0. majority.E.s_stale_fraction;
  let async_rows =
    List.filter (fun r -> r.E.s_stale_fraction > 0.) rows
    |> List.filter (fun r -> r.E.s_protocol <> "dqvl" && r.E.s_protocol <> "majority")
  in
  Alcotest.(check bool) "rowa-async shows staleness under loss" true (async_rows <> [])

let () =
  Alcotest.run "extensions"
    [
      ( "staleness",
        [
          Alcotest.test_case "fresh" `Quick test_staleness_none_when_fresh;
          Alcotest.test_case "measured" `Quick test_staleness_measured;
          Alcotest.test_case "concurrent not stale" `Quick
            test_staleness_concurrent_write_not_stale;
        ] );
      ( "churn",
        [
          Alcotest.test_case "periods" `Quick test_churn_periods_for;
          Alcotest.test_case "downtime fraction" `Quick test_churn_downtime_fraction;
          Alcotest.test_case "stop" `Quick test_churn_stop;
        ] );
      ( "atomicity checker",
        [
          Alcotest.test_case "inversion detected" `Quick test_inversion_detected;
          Alcotest.test_case "monotone" `Quick test_no_inversion_when_monotone;
          Alcotest.test_case "overlap ok" `Quick test_overlapping_reads_not_inverted;
        ] );
      ( "atomic protocols",
        [
          Alcotest.test_case "no inversions" `Slow test_atomic_variants_have_no_inversions;
          Alcotest.test_case "cost" `Slow test_atomicity_costs_a_round_trip;
        ] );
      ( "availability",
        [
          Alcotest.test_case "fig8 measured ordering" `Slow test_fig8_measured_ordering;
          Alcotest.test_case "redirection" `Quick test_redirection_restores_availability;
          Alcotest.test_case "staleness ablation" `Slow test_staleness_ablation_shape;
          Alcotest.test_case "open loop" `Quick test_open_loop_driver;
          Alcotest.test_case "queueing" `Slow test_service_time_queueing;
          Alcotest.test_case "saturation shape" `Slow test_saturation_shape;
        ] );
    ]
