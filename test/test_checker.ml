(* Unit tests of the regular-semantics checker on synthetic histories. *)

module H = Dq_harness.History
module C = Dq_harness.Regular_checker
open Dq_storage

let key = Key.make ~volume:0 ~index:0
let key2 = Key.make ~volume:0 ~index:1

let mk_op ~id ~kind ~value ~lc ~invoked ~responded =
  {
    H.id;
    client = 0;
    key;
    kind;
    value;
    lc;
    invoked;
    responded;
    gave_up = None;
  }

let lc c = Some (Lc.make ~count:c ~node:0)

let write ~id ~value ~c ~invoked ~responded =
  mk_op ~id ~kind:H.Write ~value ~lc:(lc c) ~invoked ~responded

let read ~id ~value ~c ~invoked ~responded =
  mk_op ~id ~kind:H.Read ~value ~lc:(lc c) ~invoked ~responded:(Some responded)

let violations ops = List.length (C.check ops).C.violations

let test_read_after_write_ok () =
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      read ~id:1 ~value:"a" ~c:1 ~invoked:20. ~responded:30.;
    ]
  in
  Alcotest.(check int) "no violations" 0 (violations ops)

let test_stale_read_flagged () =
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      write ~id:1 ~value:"b" ~c:2 ~invoked:20. ~responded:(Some 30.);
      read ~id:2 ~value:"a" ~c:1 ~invoked:40. ~responded:50.;
    ]
  in
  Alcotest.(check int) "stale read flagged" 1 (violations ops)

let test_concurrent_write_either_value_ok () =
  let ops v =
    [
      write ~id:0 ~value:"old" ~c:1 ~invoked:0. ~responded:(Some 10.);
      write ~id:1 ~value:"new" ~c:2 ~invoked:20. ~responded:(Some 60.);
      (* Read overlaps the second write. *)
      read ~id:2 ~value:v ~c:(if v = "old" then 1 else 2) ~invoked:30. ~responded:50.;
    ]
  in
  Alcotest.(check int) "old ok" 0 (violations (ops "old"));
  Alcotest.(check int) "new ok" 0 (violations (ops "new"))

let test_value_from_before_last_completed_flagged_even_if_concurrent_exists () =
  (* A write completed before the read; returning a yet older value is
     stale even while another write is concurrent. *)
  let ops =
    [
      write ~id:0 ~value:"ancient" ~c:1 ~invoked:0. ~responded:(Some 5.);
      write ~id:1 ~value:"current" ~c:2 ~invoked:10. ~responded:(Some 20.);
      write ~id:2 ~value:"inflight" ~c:3 ~invoked:30. ~responded:(Some 90.);
      read ~id:3 ~value:"ancient" ~c:1 ~invoked:40. ~responded:50.;
    ]
  in
  Alcotest.(check int) "ancient flagged" 1 (violations ops)

let test_initial_value_before_writes_ok () =
  let ops =
    [
      read ~id:0 ~value:"" ~c:0 ~invoked:0. ~responded:5.;
      write ~id:1 ~value:"a" ~c:1 ~invoked:10. ~responded:(Some 20.);
    ]
  in
  Alcotest.(check int) "initial ok" 0 (violations ops)

let test_initial_value_after_write_flagged () =
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      read ~id:1 ~value:"" ~c:0 ~invoked:20. ~responded:30.;
    ]
  in
  Alcotest.(check int) "stale initial flagged" 1 (violations ops)

let test_unknown_value_flagged () =
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      read ~id:1 ~value:"phantom" ~c:9 ~invoked:20. ~responded:30.;
    ]
  in
  Alcotest.(check int) "phantom flagged" 1 (violations ops)

let test_incomplete_write_concurrent_with_later_reads () =
  (* A write that never completed may become visible at any later time. *)
  let ops =
    [
      mk_op ~id:0 ~kind:H.Write ~value:"w" ~lc:None ~invoked:0. ~responded:None;
      read ~id:1 ~value:"w" ~c:1 ~invoked:1000. ~responded:1010.;
    ]
  in
  Alcotest.(check int) "allowed" 0 (violations ops)

let test_incomplete_write_does_not_force_staleness () =
  (* An incomplete write does not oblige reads to observe it. *)
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      mk_op ~id:1 ~kind:H.Write ~value:"b" ~lc:(lc 2) ~invoked:20. ~responded:None;
      read ~id:2 ~value:"a" ~c:1 ~invoked:30. ~responded:40.;
    ]
  in
  Alcotest.(check int) "old value still ok" 0 (violations ops)

let test_boundary_response_equals_invocation () =
  (* Closed-loop clients invoke the next operation at the exact instant
     the previous one responds; the write counts as completed. *)
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      read ~id:1 ~value:"a" ~c:1 ~invoked:10. ~responded:20.;
    ]
  in
  Alcotest.(check int) "boundary ok" 0 (violations ops);
  let stale =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      write ~id:1 ~value:"b" ~c:2 ~invoked:10. ~responded:(Some 20.);
      read ~id:2 ~value:"a" ~c:1 ~invoked:20. ~responded:30.;
    ]
  in
  Alcotest.(check int) "boundary stale flagged" 1 (violations stale)

let test_keys_checked_independently () =
  let on_key2 op = { op with H.key = key2 } in
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      on_key2 (write ~id:1 ~value:"b" ~c:5 ~invoked:0. ~responded:(Some 10.));
      (* Reading key1 must not be affected by key2's write. *)
      read ~id:2 ~value:"a" ~c:1 ~invoked:20. ~responded:30.;
      on_key2 (read ~id:3 ~value:"b" ~c:5 ~invoked:20. ~responded:30.);
    ]
  in
  Alcotest.(check int) "independent keys" 0 (violations ops)

let test_incomplete_reads_not_checked () =
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      mk_op ~id:1 ~kind:H.Read ~value:"" ~lc:None ~invoked:20. ~responded:None;
    ]
  in
  let report = C.check ops in
  Alcotest.(check int) "one read seen" 1 report.C.reads;
  Alcotest.(check int) "zero checked" 0 report.C.checked;
  Alcotest.(check int) "no violations" 0 (List.length report.C.violations)

let test_report_counts () =
  let ops =
    [
      write ~id:0 ~value:"a" ~c:1 ~invoked:0. ~responded:(Some 10.);
      read ~id:1 ~value:"a" ~c:1 ~invoked:20. ~responded:30.;
      read ~id:2 ~value:"" ~c:0 ~invoked:40. ~responded:50.;
    ]
  in
  let report = C.check ops in
  Alcotest.(check int) "reads" 2 report.C.reads;
  Alcotest.(check int) "checked" 2 report.C.checked;
  Alcotest.(check int) "violations" 1 (List.length report.C.violations);
  Alcotest.(check bool) "is_regular false" false (C.is_regular ops)

let test_history_recording () =
  let h = H.create () in
  let id = H.begin_op h ~client:3 ~key ~kind:H.Write ~value:"v" ~now:1. in
  Alcotest.(check int) "size" 1 (H.size h);
  Alcotest.(check int) "completed" 0 (H.completed_count h);
  H.complete_op h ~id ~value:"ignored-for-writes" ~lc:(Lc.make ~count:1 ~node:0) ~now:2.;
  Alcotest.(check int) "completed" 1 (H.completed_count h);
  match H.ops h with
  | [ op ] ->
    Alcotest.(check string) "write keeps its own value" "v" op.H.value;
    Alcotest.(check (option (float 0.))) "responded" (Some 2.) op.H.responded
  | _ -> Alcotest.fail "one op expected"

let () =
  Alcotest.run "checker"
    [
      ( "unit",
        [
          Alcotest.test_case "read after write" `Quick test_read_after_write_ok;
          Alcotest.test_case "stale read" `Quick test_stale_read_flagged;
          Alcotest.test_case "concurrent write" `Quick test_concurrent_write_either_value_ok;
          Alcotest.test_case "older than last completed" `Quick
            test_value_from_before_last_completed_flagged_even_if_concurrent_exists;
          Alcotest.test_case "initial before writes" `Quick test_initial_value_before_writes_ok;
          Alcotest.test_case "initial after write" `Quick test_initial_value_after_write_flagged;
          Alcotest.test_case "unknown value" `Quick test_unknown_value_flagged;
          Alcotest.test_case "incomplete write visible later" `Quick
            test_incomplete_write_concurrent_with_later_reads;
          Alcotest.test_case "incomplete write optional" `Quick
            test_incomplete_write_does_not_force_staleness;
          Alcotest.test_case "boundary instants" `Quick test_boundary_response_equals_invocation;
          Alcotest.test_case "keys independent" `Quick test_keys_checked_independently;
          Alcotest.test_case "incomplete reads" `Quick test_incomplete_reads_not_checked;
          Alcotest.test_case "report counts" `Quick test_report_counts;
          Alcotest.test_case "history recording" `Quick test_history_recording;
        ] );
    ]
