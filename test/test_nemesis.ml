(* Nemesis fault orchestration: give-up surfacing, seed-deterministic
   program generation and replay, lease-expiry targeting, and per-phase
   degraded-mode metrics. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Rng = Dq_util.Rng
module R = Dq_intf.Replication
module Registry = Dq_harness.Registry
module Driver = Dq_harness.Driver
module History = Dq_harness.History
module Nemesis = Dq_harness.Nemesis
module Fuzz = Dq_harness.Fuzz
module Spec = Dq_workload.Spec

(* {2 Give-up surfacing} *)

(* A front end whose IQS peers are unreachable must, with bounded
   retransmission, report failure instead of retrying forever — and the
   history must record the operation as explicitly given up, not leave
   it silently pending. *)
let test_give_up_surfaces_in_history () =
  let engine = Engine.create ~seed:42L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:1 () in
  let builder = Registry.dqvl ~max_rounds:2 () in
  let instance = builder.Registry.build engine topology () in
  (* Sever every inter-server link; clients still reach their front
     end, so requests arrive and then exhaust their QRPC rounds. *)
  let c = instance.Registry.control in
  for a = 0 to 2 do
    for b = 0 to 2 do
      if a <> b then c.Net.c_cut ~src:a ~dst:b
    done
  done;
  let spec = { Spec.default with Spec.write_ratio = 0.5 } in
  let config =
    {
      (Driver.default_config spec) with
      Driver.ops_per_client = 5;
      warmup_ops = 0;
      timeout_ms = 120_000.;
      horizon_ms = 600_000.;
    }
  in
  let result = Driver.run engine topology instance.Registry.api config in
  Alcotest.(check bool) "operations gave up" true (result.Driver.gave_up > 0);
  Alcotest.(check bool) "give-ups counted as failed" true
    (result.Driver.failed >= result.Driver.gave_up);
  let explicit =
    List.filter
      (fun (op : History.op) -> op.History.gave_up <> None && op.History.responded = None)
      result.Driver.history
  in
  Alcotest.(check int) "history records each give-up" result.Driver.gave_up
    (List.length explicit);
  (* "gave up" is distinguishable from "still pending": every
     unresponded op here gave up explicitly (nothing merely timed out,
     the driver timeout is far beyond the QRPC bound). *)
  List.iter
    (fun (op : History.op) ->
      if op.History.responded = None then
        Alcotest.(check bool) "no silent absence" true (op.History.gave_up <> None))
    result.Driver.history

let test_give_up_callback_direct () =
  let engine = Engine.create ~seed:7L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:1 () in
  let builder = Registry.dqvl ~max_rounds:1 () in
  let instance = builder.Registry.build engine topology () in
  let c = instance.Registry.control in
  for a = 0 to 2 do
    for b = 0 to 2 do
      if a <> b then c.Net.c_cut ~src:a ~dst:b
    done
  done;
  let gave_up = ref false in
  let completed = ref false in
  instance.Registry.api.R.submit_write ~client:3 ~server:0
    ~on_give_up:(fun () -> gave_up := true)
    (Dq_storage.Key.make ~volume:0 ~index:0)
    "v"
    (fun _ -> completed := true);
  Engine.run engine;
  Alcotest.(check bool) "on_give_up fired" true !gave_up;
  Alcotest.(check bool) "never completed" false !completed

(* {2 Program generation} *)

let test_generation_deterministic () =
  List.iter
    (fun cls ->
      let p1 = Nemesis.generate (Rng.create 99L) cls ~n_servers:5 in
      let p2 = Nemesis.generate (Rng.create 99L) cls ~n_servers:5 in
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministic" (Nemesis.class_name cls))
        true (p1 = p2);
      Alcotest.(check bool)
        (Printf.sprintf "%s non-empty" (Nemesis.class_name cls))
        true (p1 <> []))
    Nemesis.all_classes

let test_generated_programs_self_heal () =
  List.iter
    (fun cls ->
      List.iter
        (fun seed ->
          let program = Nemesis.generate (Rng.create seed) cls ~n_servers:4 in
          (match List.rev program with
          | { Nemesis.action = Nemesis.Heal; _ } :: _ -> ()
          | _ -> Alcotest.failf "%s: program does not end with Heal" (Nemesis.class_name cls));
          Alcotest.(check bool)
            (Printf.sprintf "%s ends before 120s" (Nemesis.class_name cls))
            true
            (Nemesis.end_ms program < 120_000.))
        [ 1L; 2L; 3L ])
    Nemesis.all_classes

let test_class_names_round_trip () =
  List.iter
    (fun cls ->
      match Nemesis.class_of_name (Nemesis.class_name cls) with
      | Some c -> Alcotest.(check bool) "round trip" true (c = cls)
      | None -> Alcotest.fail "class name did not round-trip")
    Nemesis.all_classes;
  Alcotest.(check bool) "unknown rejected" true (Nemesis.class_of_name "bogus" = None)

(* {2 Lease-expiry targeting} *)

(* The Lease_window action must observe a real volume lease through the
   DQVL introspection hook and fire its partition inside the expiry
   window, not just after the fallback wait. *)
let test_lease_window_targets_expiry () =
  let engine = Engine.create ~seed:5L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:1 () in
  let builder = Registry.dqvl ~volume_lease_ms:1_000. ~proactive_renew:false () in
  let instance = builder.Registry.build engine topology () in
  (* A read acquires volume leases at the front end's OQS node. *)
  let done_read = ref false in
  instance.Registry.api.R.submit_read ~client:3 ~server:0
    (Dq_storage.Key.make ~volume:0 ~index:0)
    (fun _ -> done_read := true);
  Engine.run_while engine (fun () -> not !done_read);
  Alcotest.(check bool) "read completed" true !done_read;
  let program =
    [
      {
        Nemesis.at_ms = Engine.now engine +. 50.;
        action =
          Nemesis.Lease_window
            {
              pattern = Nemesis.Isolate_one { node = 0; oneway = false };
              hold_ms = 300.;
              max_wait_ms = 30_000.;
            };
      };
    ]
  in
  let log =
    Nemesis.install engine instance ~servers:(Topology.servers topology) program
  in
  Engine.run engine;
  let opened =
    List.find_opt
      (fun (e : Nemesis.event) ->
        String.length e.Nemesis.label >= 18
        && String.sub e.Nemesis.label 0 18 = "lease-window opene")
      !log
  in
  match opened with
  | None -> Alcotest.fail "lease window never opened"
  | Some e ->
    (* the window was triggered by observed lease expiry, not the
       max-wait fallback *)
    let contains haystack needle =
      let h = String.length haystack and n = String.length needle in
      let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
      scan 0
    in
    let mentions_expiry = contains e.Nemesis.label "expiry in" in
    Alcotest.(check bool)
      (Printf.sprintf "window targeted a lease (%s)" e.Nemesis.label)
      true mentions_expiry

(* {2 Scenario replay and per-phase metrics} *)

(* Pre-drift counterexample seeds must replay identically: every field
   that existed before [max_drift] is drawn before it. *)
let test_seed_prefix_stable () =
  List.iter
    (fun seed ->
      let s = Fuzz.scenario_of_seed seed in
      let rng = Rng.create seed in
      let n_servers = 3 + Rng.int rng 5 in
      let write_ratio = 0.1 +. Rng.float rng 0.5 in
      let objects = 1 + Rng.int rng 3 in
      let loss = Rng.float rng 0.15 in
      let duplicate = Rng.float rng 0.15 in
      let jitter_ms = Rng.float rng 40. in
      let crashes = Rng.bool rng in
      let partition = Rng.bool rng in
      Alcotest.(check int) "n_servers" n_servers s.Fuzz.n_servers;
      Alcotest.(check (float 0.)) "write_ratio" write_ratio s.Fuzz.write_ratio;
      Alcotest.(check int) "objects" objects s.Fuzz.objects;
      Alcotest.(check (float 0.)) "loss" loss s.Fuzz.loss;
      Alcotest.(check (float 0.)) "duplicate" duplicate s.Fuzz.duplicate;
      Alcotest.(check (float 0.)) "jitter" jitter_ms s.Fuzz.jitter_ms;
      Alcotest.(check bool) "crashes" crashes s.Fuzz.crashes;
      Alcotest.(check bool) "partition" partition s.Fuzz.partition;
      Alcotest.(check bool) "drift bounded" true
        (s.Fuzz.max_drift >= 0. && s.Fuzz.max_drift < 0.01);
      Alcotest.(check bool) "no nemesis by default" true (s.Fuzz.nemesis = None))
    [ 1L; 17L; 1000L; 424242L ]

let nemesis_scenario seed =
  let s = Fuzz.scenario_of_seed seed in
  let rng = Rng.create (Int64.logxor seed 0x5DEECE66DL) in
  let program = Nemesis.generate rng Nemesis.Mixed ~n_servers:s.Fuzz.n_servers in
  { s with Fuzz.crashes = false; partition = false; nemesis = Some program }

let test_run_replays_exactly () =
  let builder = Registry.dqvl ~volume_lease_ms:1_000. ~proactive_renew:false () in
  let scenario = nemesis_scenario 2024L in
  let a = Fuzz.run builder scenario in
  let b = Fuzz.run builder scenario in
  Alcotest.(check int) "completed replays" a.Fuzz.completed b.Fuzz.completed;
  Alcotest.(check int) "failed replays" a.Fuzz.failed b.Fuzz.failed;
  Alcotest.(check int) "gave_up replays" a.Fuzz.gave_up b.Fuzz.gave_up;
  Alcotest.(check (float 0.)) "max_gap replays" a.Fuzz.max_gap_ms b.Fuzz.max_gap_ms;
  Alcotest.(check (list string)) "violations replay" a.Fuzz.violations b.Fuzz.violations;
  Alcotest.(check int) "phases replay" (List.length a.Fuzz.phases)
    (List.length b.Fuzz.phases)

let test_phases_partition_history () =
  let builder = Registry.dqvl ~volume_lease_ms:1_000. ~proactive_renew:false () in
  let outcome = Fuzz.run builder (nemesis_scenario 7L) in
  Alcotest.(check bool) "phases recorded" true (outcome.Fuzz.phases <> []);
  (match outcome.Fuzz.phases with
  | first :: _ -> Alcotest.(check string) "first phase" "initial" first.Nemesis.label
  | [] -> ());
  let total =
    List.fold_left (fun acc p -> acc + p.Nemesis.p_issued) 0 outcome.Fuzz.phases
  in
  let settled =
    List.fold_left
      (fun acc p -> acc + p.Nemesis.p_completed + p.Nemesis.p_failed + p.Nemesis.p_gave_up)
      0 outcome.Fuzz.phases
  in
  Alcotest.(check int) "phase slices partition the history" total settled;
  Alcotest.(check bool) "all issued ops assigned to a phase" true
    (total >= outcome.Fuzz.completed)

let test_campaign_smoke_all_classes () =
  (* one scenario per fault class; violations mean a real safety or
     liveness bug and must be empty *)
  List.iteri
    (fun i cls ->
      let seed = Int64.of_int (3000 + i) in
      let s = Fuzz.scenario_of_seed seed in
      let program = Nemesis.generate (Rng.create seed) cls ~n_servers:s.Fuzz.n_servers in
      let scenario =
        { s with Fuzz.crashes = false; partition = false; nemesis = Some program }
      in
      let outcome =
        Fuzz.run (Registry.dqvl ~volume_lease_ms:1_000. ~proactive_renew:false ()) scenario
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s passes" (Nemesis.class_name cls))
        [] outcome.Fuzz.violations)
    Nemesis.all_classes

let () =
  Alcotest.run "nemesis"
    [
      ( "give-up",
        [
          Alcotest.test_case "surfaces in history" `Quick test_give_up_surfaces_in_history;
          Alcotest.test_case "direct callback" `Quick test_give_up_callback_direct;
        ] );
      ( "programs",
        [
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "self-healing" `Quick test_generated_programs_self_heal;
          Alcotest.test_case "class names" `Quick test_class_names_round_trip;
        ] );
      ( "lease-targeting",
        [ Alcotest.test_case "window targets expiry" `Quick test_lease_window_targets_expiry ] );
      ( "replay",
        [
          Alcotest.test_case "seed prefix stable" `Quick test_seed_prefix_stable;
          Alcotest.test_case "runs replay exactly" `Quick test_run_replays_exactly;
          Alcotest.test_case "phases partition history" `Quick test_phases_partition_history;
        ] );
      ( "campaign",
        [ Alcotest.test_case "all classes smoke" `Quick test_campaign_smoke_all_classes ] );
    ]
