(* The bench library: the hand-rolled JSON reader, the metric differ
   (direction classification, noise band, missing-metric gating,
   scenario-contract errors), and the scenario -> results -> diff
   pipeline end to end on real smoke runs. *)

module Json = Dq_bench.Json
module Diff = Dq_bench.Diff
module Scenario = Dq_bench.Scenario
module Results = Dq_bench.Results
module Aoi = Dq_telemetry.Aoi
module Event = Dq_telemetry.Event

let direction =
  let pp ppf (d : Diff.direction) =
    Format.pp_print_string ppf
      (match d with
      | Diff.Lower_better -> "lower-better"
      | Diff.Higher_better -> "higher-better"
      | Diff.Neutral -> "neutral"
      | Diff.Skip -> "skip")
  in
  Alcotest.testable pp (fun (a : Diff.direction) b ->
      match a, b with
      | Diff.Lower_better, Diff.Lower_better
      | Diff.Higher_better, Diff.Higher_better
      | Diff.Neutral, Diff.Neutral
      | Diff.Skip, Diff.Skip -> true
      | _ -> false)

let ok = function
  | Ok r -> r
  | Error msg -> Alcotest.failf "expected a report, got error: %s" msg

let err = function
  | Ok _ -> Alcotest.fail "expected an error, got a report"
  | Error msg -> msg

(* --- the JSON reader ------------------------------------------------------ *)

let test_parse_basics () =
  let j =
    Json.parse
      {|{"a": 1.5, "b": [true, null, "x\nA"], "neg": -2e3, "c": {"d": 7}}|}
  in
  Alcotest.(check (option (float 0.))) "number" (Some 1.5)
    (Option.bind (Json.member "a" j) Json.num);
  Alcotest.(check (option (float 0.))) "exponent" (Some (-2000.))
    (Option.bind (Json.member "neg" j) Json.num);
  Alcotest.(check (option (float 0.))) "nested member" (Some 7.)
    (Option.bind (Option.bind (Json.member "c" j) (Json.member "d")) Json.num);
  Alcotest.(check (option string)) "escapes decoded" (Some "x\nA")
    (match Option.bind (Json.member "b" j) Json.arr with
    | Some [ _; _; s ] -> Json.str s
    | _ -> None);
  Alcotest.(check (option int)) "array length" (Some 3)
    (Option.map List.length (Option.bind (Json.member "b" j) Json.arr));
  Alcotest.(check (option (float 0.))) "missing member" None
    (Option.bind (Json.member "zzz" j) Json.num)

let test_flatten () =
  let j = Json.parse {|{"a": 1.5, "b": [true, null, "skip"], "c": {"d": 7, "e": 8}}|} in
  Alcotest.(check (list (pair string (float 0.))))
    "dotted paths, [i] indices, bools as 0/1, strings/nulls dropped"
    [ ("a", 1.5); ("b[0]", 1.); ("c.d", 7.); ("c.e", 8.) ]
    (Json.flatten j)

let test_parse_errors () =
  let raises s =
    match Json.parse s with
    | _ -> Alcotest.failf "accepted malformed input %S" s
    | exception Json.Error _ -> ()
  in
  raises "{";
  raises "[1, 2,]";
  raises "{\"a\": 1} trailing";
  raises "\"unterminated";
  raises "nul";
  raises "{\"a\" 1}"

(* The AoI sink's JSON block must be readable by the bench reader —
   the two hand-rolled halves meet in the results files. *)
let test_aoi_json_round_trip () =
  let t = Aoi.create () in
  let sink = Aoi.sink t in
  sink ~time_ms:100.
    (Event.Op_served
       { op = 0; client = 0; kind = "write"; key = "k"; lc_count = 1; lc_node = 0; start_ms = 50. });
  sink ~time_ms:150.
    (Event.Op_served
       { op = 1; client = 0; kind = "read"; key = "k"; lc_count = 1; lc_node = 0; start_ms = 120. });
  let j = Json.parse (Aoi.to_json t) in
  Alcotest.(check (option (float 0.))) "reads_checked survives" (Some 1.)
    (Option.bind (Json.member "reads_checked" j) Json.num);
  Alcotest.(check (option (float 0.))) "mean_read_age_ms survives" (Some 50.)
    (Option.bind (Json.member "mean_read_age_ms" j) Json.num);
  Alcotest.(check bool) "read-age histogram present" true
    (Option.is_some (Json.member "read_age_ms" j))

(* --- direction classification --------------------------------------------- *)

let test_direction_of () =
  let check path want = Alcotest.check direction path want (Diff.direction_of path) in
  check "base.wall.events_per_sec" Diff.Skip;
  check "base.wall.wall_s" Diff.Skip;
  check "base.latency_ms.read.p99" Diff.Lower_better;
  check "base.aoi.stale_fraction" Diff.Lower_better;
  check "base.messages.bytes_per_request" Diff.Lower_better;
  check "base.failed" Diff.Lower_better;
  check "base.completed" Diff.Higher_better;
  check "base.throughput_per_s" Diff.Higher_better;
  check "base.latency_ms.read.count" Diff.Neutral;
  check "base.aoi.read_age_ms.buckets[3]" Diff.Neutral;
  check "base.sim_events" Diff.Neutral;
  check "base.staleness_oracle.checked" Diff.Neutral;
  check "scenario-echo.wan_scale" Diff.Neutral

(* --- the differ on synthetic documents ------------------------------------ *)

let doc ?(schema = "3") ?(version = "1") ?(name = "baseline") ?(kind = "scenario")
    ?(band = "0.1") results =
  Json.parse
    (Printf.sprintf
       {|{"schema": %s, "kind": "%s", "scenario": {"name": "%s", "version": %s},
          "noise_band": %s, "results": {"p": {%s}}}|}
       schema kind name version band results)

let test_diff_self_passes () =
  let j = doc {|"latency_ms": {"p50": 10, "count": 5}, "completed": 100|} in
  let r = ok (Diff.diff j j) in
  Alcotest.(check bool) "passes" true (Diff.passed r);
  Alcotest.(check int) "no regressions" 0 (List.length r.Diff.regressions);
  Alcotest.(check int) "gated + neutral compared" 3 r.Diff.compared

let test_diff_directions_gate () =
  let old_j = doc {|"p50": 10, "completed": 100|} in
  (* Latency doubling regresses; completion halving regresses. *)
  let worse = doc {|"p50": 20, "completed": 100|} in
  let r = ok (Diff.diff old_j worse) in
  Alcotest.(check bool) "latency up fails" false (Diff.passed r);
  Alcotest.(check int) "one regression" 1 (List.length r.Diff.regressions);
  let fewer = doc {|"p50": 10, "completed": 50|} in
  Alcotest.(check bool) "completed down fails" false
    (Diff.passed (ok (Diff.diff old_j fewer)));
  (* The same movements in the good direction only improve. *)
  let better = doc {|"p50": 5, "completed": 200|} in
  let r = ok (Diff.diff old_j better) in
  Alcotest.(check bool) "improvements pass" true (Diff.passed r);
  Alcotest.(check int) "both improved" 2 (List.length r.Diff.improvements)

let test_diff_band () =
  let old_j = doc {|"p50": 100|} in
  let close = doc {|"p50": 109|} in
  Alcotest.(check bool) "within the 10% band" true (Diff.passed (ok (Diff.diff old_j close)));
  let far = doc {|"p50": 111|} in
  Alcotest.(check bool) "outside the band" false (Diff.passed (ok (Diff.diff old_j far)));
  Alcotest.(check bool) "explicit band overrides the file" true
    (Diff.passed (ok (Diff.diff ~band:0.2 old_j far)));
  (* The absolute floor: a 0 -> 0.5 move on a tiny metric stays inside
     band * max(|old|, 1). *)
  let zero = doc {|"p50": 0|} in
  let tiny = doc {|"p50": 0.05|} in
  Alcotest.(check bool) "absolute floor absorbs tiny drift" true
    (Diff.passed (ok (Diff.diff zero tiny)))

let test_diff_missing_and_added () =
  let old_j = doc {|"p50": 10, "p99": 50|} in
  let new_j = doc {|"p50": 10, "brand_new": 1|} in
  let r = ok (Diff.diff old_j new_j) in
  Alcotest.(check bool) "missing gated metric fails" false (Diff.passed r);
  Alcotest.(check (list string)) "which one" [ "p.p99" ] r.Diff.missing;
  Alcotest.(check (list string)) "added is noted, not gated" [ "p.brand_new" ] r.Diff.added

let test_diff_neutral_and_wall () =
  let old_j = doc {|"count": 5, "wall": {"events_per_sec": 1000}|} in
  let new_j = doc {|"count": 50, "wall": {"events_per_sec": 1}|} in
  let r = ok (Diff.diff old_j new_j) in
  Alcotest.(check bool) "neutral + wall never gate" true (Diff.passed r);
  Alcotest.(check int) "neutral drift reported" 1 (List.length r.Diff.changes);
  Alcotest.(check int) "wall not even compared" 1 r.Diff.compared

let test_diff_contract_errors () =
  let a = doc {|"p50": 10|} in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "version bump refuses comparison" true
    (contains ~sub:"version" (err (Diff.diff a (doc ~version:"2" {|"p50": 10|}))));
  Alcotest.(check bool) "scenario name mismatch" true
    (contains ~sub:"name" (err (Diff.diff a (doc ~name:"latency-focus" {|"p50": 10|}))));
  Alcotest.(check bool) "kind mismatch" true
    (contains ~sub:"kind" (err (Diff.diff a (doc ~kind:"sweep" {|"p50": 10|}))));
  Alcotest.(check bool) "schema 2 rejected" true
    (contains ~sub:"schema" (err (Diff.diff a (doc ~schema:"2" {|"p50": 10|}))));
  Alcotest.(check bool) "empty OLD rejected" true
    (contains ~sub:"results"
       (err (Diff.diff (Json.parse {|{"schema": 3, "kind": "scenario",
         "scenario": {"name": "baseline", "version": 1}}|}) a)))

(* --- scenario registry ---------------------------------------------------- *)

let test_registry () =
  Alcotest.(check int) "five scenarios" 5 (List.length Scenario.all);
  List.iter
    (fun (s : Scenario.t) ->
      Alcotest.(check bool) (s.Scenario.name ^ " findable") true
        (match Scenario.find s.Scenario.name with Some _ -> true | None -> false);
      Alcotest.(check bool) (s.Scenario.name ^ " smoke is smaller") true
        (s.Scenario.smoke_ops < s.Scenario.ops_per_client);
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (s.Scenario.name ^ " protocol " ^ p ^ " registered")
            true
            (match Dq_harness.Registry.find p with Some _ -> true | None -> false))
        s.Scenario.protocols)
    Scenario.all;
  Alcotest.(check bool) "unknown name" true
    (match Scenario.find "nope" with None -> true | Some _ -> false)

(* --- end to end: run -> render -> parse -> diff ---------------------------- *)

(* One real smoke cell through the whole pipeline. The in-run
   cross-check already holds the AoI sink to the offline oracle; here
   the rendered document must parse with our own reader, carry the
   contract fields, self-diff clean, and flag an injected slowdown. *)
let test_pipeline_end_to_end () =
  let scenario = Scenario.baseline in
  let outcome =
    Scenario.run_protocol ~smoke:true ~seed:42L scenario ~protocol:"dqvl-paper"
  in
  let rendered = Results.render ~smoke:true ~seed:42L scenario [ outcome ] in
  let j = Json.parse rendered in
  Alcotest.(check (option (float 0.))) "schema 3" (Some 3.)
    (Option.bind (Json.member "schema" j) Json.num);
  Alcotest.(check (option string)) "scenario name" (Some "baseline")
    (Option.bind (Option.bind (Json.member "scenario" j) (Json.member "name")) Json.str);
  Alcotest.(check bool) "result keyed by protocol" true
    (Option.is_some (Option.bind (Json.member "results" j) (Json.member "dqvl-paper")));
  let r = ok (Diff.diff j j) in
  Alcotest.(check bool) "self-diff passes" true (Diff.passed r);
  Alcotest.(check bool) "a real document has many gated metrics" true (r.Diff.compared > 50);
  (* Injected regression: the same cell at doubled WAN delay must trip
     the gate — this is the property the CI job relies on. *)
  let slow =
    Scenario.run_protocol ~wan_scale:2. ~smoke:true ~seed:42L scenario
      ~protocol:"dqvl-paper"
  in
  let slow_j = Json.parse (Results.render ~smoke:true ~seed:42L scenario [ slow ]) in
  let r = ok (Diff.diff j slow_j) in
  Alcotest.(check bool) "doubled WAN delay is a regression" false (Diff.passed r);
  Alcotest.(check bool) "latency regressions reported" true
    (List.length r.Diff.regressions > 0)

(* Same seed, same cell: the rendered document is byte-stable (wall
   metrics are only emitted when a clock is injected, which tests never
   do) — the property that makes committed baselines meaningful. *)
let test_results_deterministic () =
  let render () =
    let outcome =
      Scenario.run_protocol ~smoke:true ~seed:7L Scenario.high_throughput
        ~protocol:"majority"
    in
    Results.render ~smoke:true ~seed:7L Scenario.high_throughput [ outcome ]
  in
  Alcotest.(check string) "byte-identical rerun" (render ()) (render ())

let () =
  Alcotest.run "bench"
    [
      ( "json",
        [
          Alcotest.test_case "parse + accessors" `Quick test_parse_basics;
          Alcotest.test_case "flatten" `Quick test_flatten;
          Alcotest.test_case "malformed input" `Quick test_parse_errors;
          Alcotest.test_case "reads the aoi writer" `Quick test_aoi_json_round_trip;
        ] );
      ( "diff",
        [
          Alcotest.test_case "direction classification" `Quick test_direction_of;
          Alcotest.test_case "self-diff passes" `Quick test_diff_self_passes;
          Alcotest.test_case "directions gate" `Quick test_diff_directions_gate;
          Alcotest.test_case "noise band" `Quick test_diff_band;
          Alcotest.test_case "missing gates, added notes" `Quick test_diff_missing_and_added;
          Alcotest.test_case "neutral + wall exempt" `Quick test_diff_neutral_and_wall;
          Alcotest.test_case "contract errors" `Quick test_diff_contract_errors;
        ] );
      ( "scenarios",
        [ Alcotest.test_case "registry shape" `Quick test_registry ] );
      ( "pipeline",
        [
          Alcotest.test_case "run -> render -> parse -> diff" `Quick
            test_pipeline_end_to_end;
          Alcotest.test_case "rendered results are deterministic" `Quick
            test_results_deterministic;
        ] );
    ]
