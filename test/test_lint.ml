(* Golden tests for dqr-lint. Each rule has a violating and a clean
   fixture under test/lint_fixtures/; the fixtures are compiled as a
   regular library so their .cmt typedtrees exist, and copy rules in
   test/lint_fixtures/dune give them stable names. The test runs with
   cwd = _build/default/test, so the build root is ".." *)

module D = Dq_lint.Diagnostic
module Rules = Dq_lint.Rules
module Engine = Dq_lint.Engine

let fixture_cfg =
  { Engine.default_config with ignore_scopes = true; exclude_paths = [] }

let lint ?(cfg = fixture_cfg) name =
  let path = Filename.concat "lint_fixtures" (name ^ ".cmt") in
  match Engine.lint_cmt ~root:".." cfg path with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "loading %s: %s" name e

let ids ds = List.map (fun (d : D.t) -> d.D.rule) ds
let strings ds = List.map D.to_string ds

(* ------------------------------------------------------------------ *)
(* One violating fixture per rule: expected rule ids at expected count *)

let test_bad_fixtures () =
  let expect name rule count =
    Alcotest.(check (list string))
      (name ^ " rule ids")
      (List.init count (fun _ -> rule))
      (ids (lint name))
  in
  expect "r1_bad" "R1" 5;
  expect "r2_bad" "R2" 2;
  expect "r3_bad" "R3" 3;
  expect "r4_bad" "R4" 2;
  expect "r5_bad" "R5" 3;
  expect "r5_post_bad" "R5" 3

let test_ok_fixtures () =
  List.iter
    (fun name ->
      Alcotest.(check (list string)) (name ^ " is clean") [] (strings (lint name)))
    [ "r1_ok"; "r2_ok"; "r3_ok"; "r4_ok"; "r5_ok"; "r5_post_ok" ]

(* ------------------------------------------------------------------ *)
(* Golden diagnostics: exact file:line:col, rule id and message text   *)

let test_golden_r2 () =
  let expected =
    [
      "test/lint_fixtures/r2_bad.ml:3:14: [R2] Stdlib.Random.int draws from \
       the ambient global generator; route randomness through Dq_util.Rng so \
       runs replay bit-for-bit";
      "test/lint_fixtures/r2_bad.ml:4:14: [R2] Stdlib.Random.bool draws from \
       the ambient global generator; route randomness through Dq_util.Rng so \
       runs replay bit-for-bit";
    ]
  in
  Alcotest.(check (list string)) "r2_bad golden" expected (strings (lint "r2_bad"))

let test_golden_r5 () =
  let expected =
    [
      "test/lint_fixtures/r5_bad.ml:8:41: [R5] worker closure writes a \
       captured ref via := (data race across pool domains)";
      "test/lint_fixtures/r5_bad.ml:13:33: [R5] worker closure mutates a \
       captured hash table via Hashtbl.replace (data race across pool domains)";
      "test/lint_fixtures/r5_bad.ml:16:33: [R5] worker closure mutates field \
       'v' of captured state (data race across pool domains)";
    ]
  in
  Alcotest.(check (list string)) "r5_bad golden" expected (strings (lint "r5_bad"))

let test_golden_r5_post () =
  let expected =
    [
      "test/lint_fixtures/r5_post_bad.ml:9:60: [R5] worker closure writes a \
       captured ref via := (the post callback runs on the destination \
       partition's domain; mutate only destination-owned state or communicate \
       through the mailbox API)";
      "test/lint_fixtures/r5_post_bad.ml:13:60: [R5] worker closure mutates a \
       captured hash table via Hashtbl.replace (the post callback runs on the \
       destination partition's domain; mutate only destination-owned state or \
       communicate through the mailbox API)";
      "test/lint_fixtures/r5_post_bad.ml:16:60: [R5] worker closure mutates \
       field 'v' of captured state (the post callback runs on the destination \
       partition's domain; mutate only destination-owned state or communicate \
       through the mailbox API)";
    ]
  in
  Alcotest.(check (list string))
    "r5_post_bad golden" expected
    (strings (lint "r5_post_bad"))

(* ------------------------------------------------------------------ *)
(* Suppression: attributes and the allowlist file                      *)

let test_suppression_attributes () =
  (* suppressed.ml repeats violations of R1 and R2 and of the wall-clock
     rule, each under a [@dqr.lint.allow] in a different position
     (expression, let-binding, floating file-level, empty payload). *)
  Alcotest.(check (list string))
    "suppressed.ml is silent" []
    (strings (lint "suppressed"))

let test_parse_allowlist () =
  let parsed =
    Engine.parse_allowlist
      "# tolerated debt, see DESIGN.md section 9\n\
       R1 lib/harness/legacy.ml\n\
       \n\
       *  test/scratch\n"
  in
  Alcotest.(check (list (pair string string)))
    "parsed entries"
    [ ("R1", "lib/harness/legacy.ml"); ("*", "test/scratch") ]
    parsed

let test_allowlist_filters () =
  let with_allow allowlist = { fixture_cfg with Engine.allowlist } in
  (* Matching rule + path substring silences the file. *)
  Alcotest.(check int)
    "R1 allow silences r1_bad" 0
    (List.length (lint ~cfg:(with_allow [ ("R1", "lint_fixtures/r1_bad") ]) "r1_bad"));
  (* Wildcard rule matches everything on that path. *)
  Alcotest.(check int)
    "* allow silences r5_bad" 0
    (List.length (lint ~cfg:(with_allow [ ("*", "r5_bad") ]) "r5_bad"));
  (* Wrong rule id leaves the findings alone. *)
  Alcotest.(check int)
    "R2 allow does not touch r1_bad" 5
    (List.length (lint ~cfg:(with_allow [ ("R2", "r1_bad") ]) "r1_bad"))

(* ------------------------------------------------------------------ *)
(* Scoping: rules only fire inside their declared subtrees             *)

let test_scoping () =
  let scoped = { Engine.default_config with exclude_paths = [] } in
  (* R1 is scoped to lib/ — the same fixture that shows 5 findings with
     scoping off shows none with scoping on. *)
  Alcotest.(check int)
    "R1 out of scope under test/" 0
    (List.length (lint ~cfg:scoped "r1_bad"));
  (* R2 applies everywhere outside lib/util/rng.ml, including test/. *)
  Alcotest.(check int)
    "R2 in scope under test/" 2
    (List.length (lint ~cfg:scoped "r2_bad"));
  (* The default config excludes the fixture tree entirely. *)
  Alcotest.(check int)
    "default config skips fixtures" 0
    (List.length (lint ~cfg:Engine.default_config "r2_bad"))

(* ------------------------------------------------------------------ *)
(* JSON output shape                                                   *)

let test_json_shape () =
  let ds = lint "r2_bad" in
  (match ds with
  | d :: _ ->
    Alcotest.(check string)
      "single diagnostic json"
      "{\"rule\":\"R2\",\"file\":\"test/lint_fixtures/r2_bad.ml\",\"line\":3,\
       \"col\":14,\"message\":\"Stdlib.Random.int draws from the ambient \
       global generator; route randomness through Dq_util.Rng so runs replay \
       bit-for-bit\"}"
      (D.to_json d)
  | [] -> Alcotest.fail "r2_bad produced no diagnostics");
  let json = D.list_to_json ds in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.equal (String.sub json i n) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has version" true (contains "\"version\":1");
  Alcotest.(check bool) "has count" true (contains "\"count\":2");
  Alcotest.(check bool)
    "envelope opens" true
    (String.length json > 0 && Char.equal json.[0] '{');
  Alcotest.(check string)
    "empty list golden"
    "{\"version\":1,\"count\":0,\"diagnostics\":[]}\n"
    (D.list_to_json [])

(* ------------------------------------------------------------------ *)
(* Rule registry                                                       *)

let test_rule_registry () =
  Alcotest.(check int) "five rules" 5 (List.length Rules.all);
  let id_of k =
    match Rules.find k with
    | Some (r : Rules.t) -> r.Rules.id
    | None -> Alcotest.failf "rule %s not found" k
  in
  Alcotest.(check string) "find by id" "R1" (id_of "R1");
  Alcotest.(check string) "find by name" "R3" (id_of "no-wall-clock");
  Alcotest.(check string) "find R5 by name" "R5" (id_of "domain-safety");
  (match Rules.find "R9" with
  | None -> ()
  | Some _ -> Alcotest.fail "R9 should not resolve")

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "violating fixtures" `Quick test_bad_fixtures;
          Alcotest.test_case "clean fixtures" `Quick test_ok_fixtures;
          Alcotest.test_case "golden R2" `Quick test_golden_r2;
          Alcotest.test_case "golden R5" `Quick test_golden_r5;
          Alcotest.test_case "golden R5 post" `Quick test_golden_r5_post;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "attributes" `Quick test_suppression_attributes;
          Alcotest.test_case "parse allowlist" `Quick test_parse_allowlist;
          Alcotest.test_case "allowlist filtering" `Quick test_allowlist_filters;
        ] );
      ( "config",
        [
          Alcotest.test_case "scoping" `Quick test_scoping;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
        ] );
    ]
