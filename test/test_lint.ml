(* Golden tests for dqr-lint. Each rule has a violating and a clean
   fixture under test/lint_fixtures/; the fixtures are compiled as a
   regular library so their .cmt typedtrees exist, and copy rules in
   test/lint_fixtures/dune give them stable names. The test runs with
   cwd = _build/default/test, so the build root is ".." *)

module D = Dq_lint.Diagnostic
module Rules = Dq_lint.Rules
module Engine = Dq_lint.Engine
module Sarif = Dq_lint.Sarif

let fixture_cfg =
  { Engine.default_config with ignore_scopes = true; exclude_paths = [] }

let lint ?(cfg = fixture_cfg) name =
  let path = Filename.concat "lint_fixtures" (name ^ ".cmt") in
  match Engine.lint_cmt ~root:".." cfg path with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "loading %s: %s" name e

let ids ds = List.map (fun (d : D.t) -> d.D.rule) ds
let strings ds = List.map D.to_string ds

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h
    && (String.equal (String.sub haystack i n) needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* One violating fixture per rule: expected rule ids at expected count *)

let test_bad_fixtures () =
  let expect name rule count =
    Alcotest.(check (list string))
      (name ^ " rule ids")
      (List.init count (fun _ -> rule))
      (ids (lint name))
  in
  expect "r1_bad" "R1" 5;
  expect "r2_bad" "R2" 2;
  expect "r3_bad" "R3" 3;
  expect "r4_bad" "R4" 2;
  expect "r5_bad" "R5" 3;
  expect "r5_post_bad" "R5" 3;
  expect "r6_bad" "R6" 2;
  expect "r7_bad" "R7" 3;
  expect "r8_bad" "R8" 3;
  expect "r9_bad" "R9" 2

let test_ok_fixtures () =
  List.iter
    (fun name ->
      Alcotest.(check (list string)) (name ^ " is clean") [] (strings (lint name)))
    [
      "r1_ok"; "r2_ok"; "r3_ok"; "r4_ok"; "r5_ok"; "r5_post_ok"; "r6_ok";
      "r7_ok"; "r8_ok"; "r9_ok";
    ]

(* ------------------------------------------------------------------ *)
(* Golden diagnostics: exact file:line:col, rule id and message text   *)

let test_golden_r2 () =
  let expected =
    [
      "test/lint_fixtures/r2_bad.ml:3:14: [R2] Stdlib.Random.int draws from \
       the ambient global generator; route randomness through Dq_util.Rng so \
       runs replay bit-for-bit";
      "test/lint_fixtures/r2_bad.ml:4:14: [R2] Stdlib.Random.bool draws from \
       the ambient global generator; route randomness through Dq_util.Rng so \
       runs replay bit-for-bit";
    ]
  in
  Alcotest.(check (list string)) "r2_bad golden" expected (strings (lint "r2_bad"))

let test_golden_r5 () =
  let expected =
    [
      "test/lint_fixtures/r5_bad.ml:8:41: [R5] worker closure writes a \
       captured ref via := (data race across pool domains)";
      "test/lint_fixtures/r5_bad.ml:13:33: [R5] worker closure mutates a \
       captured hash table via Hashtbl.replace (data race across pool domains)";
      "test/lint_fixtures/r5_bad.ml:16:33: [R5] worker closure mutates field \
       'v' of captured state (data race across pool domains)";
    ]
  in
  Alcotest.(check (list string)) "r5_bad golden" expected (strings (lint "r5_bad"))

let test_golden_r5_post () =
  let expected =
    [
      "test/lint_fixtures/r5_post_bad.ml:9:60: [R5] worker closure writes a \
       captured ref via := (the post callback runs on the destination \
       partition's domain; mutate only destination-owned state or communicate \
       through the mailbox API)";
      "test/lint_fixtures/r5_post_bad.ml:13:60: [R5] worker closure mutates a \
       captured hash table via Hashtbl.replace (the post callback runs on the \
       destination partition's domain; mutate only destination-owned state or \
       communicate through the mailbox API)";
      "test/lint_fixtures/r5_post_bad.ml:16:60: [R5] worker closure mutates \
       field 'v' of captured state (the post callback runs on the destination \
       partition's domain; mutate only destination-owned state or communicate \
       through the mailbox API)";
    ]
  in
  Alcotest.(check (list string))
    "r5_post_bad golden" expected
    (strings (lint "r5_post_bad"))

let test_golden_r6 () =
  let msg how =
    Printf.sprintf
      "Dq_sim.Engine.%s arms a raw engine timer with no incarnation guard; \
       node-scoped callbacks must go through Net.timer so crash/amnesia \
       recovery drops them instead of letting them fire into the node's next \
       life"
      how
  in
  let expected =
    [
      "test/lint_fixtures/r6_bad.ml:5:27: [R6] " ^ msg "schedule";
      "test/lint_fixtures/r6_bad.ml:7:30: [R6] " ^ msg "schedule_at";
    ]
  in
  Alcotest.(check (list string)) "r6_bad golden" expected (strings (lint "r6_bad"))

let test_golden_r7 () =
  let expected =
    [
      "test/lint_fixtures/r7_bad.ml:5:2: [R7] Hashtbl.fold result escapes \
       the enclosing function in hash order; sort it deterministically \
       before it escapes, or accumulate commutatively (count/sum/min/max)";
      "test/lint_fixtures/r7_bad.ml:10:19: [R7] Hashtbl.fold result escapes \
       in hash order via local helper 'collect'; sort it at the escape point \
       or inside the helper";
      "test/lint_fixtures/r7_bad.ml:16:27: [R7] Hashtbl.iter conses into a \
       captured ref in hash order; use Hashtbl.fold and sort the result \
       before it escapes";
    ]
  in
  Alcotest.(check (list string)) "r7_bad golden" expected (strings (lint "r7_bad"))

let test_golden_r8 () =
  let msg fn =
    Printf.sprintf
      "%s raises on inputs its type allows; use a total pattern instead \
       (match, List.nth_opt, Option.value, Rng.choose)"
      fn
  in
  let expected =
    [
      "test/lint_fixtures/r8_bad.ml:3:27: [R8] " ^ msg "Stdlib.List.hd";
      "test/lint_fixtures/r8_bad.ml:5:27: [R8] " ^ msg "Stdlib.List.nth";
      "test/lint_fixtures/r8_bad.ml:7:32: [R8] " ^ msg "Stdlib.Option.get";
    ]
  in
  Alcotest.(check (list string)) "r8_bad golden" expected (strings (lint "r8_bad"))

let test_golden_r9 () =
  let msg =
    "wildcard arm silently drops messages of type Message.t; name the \
     constructors, emit a telemetry drop event, or annotate the deliberate \
     drop with [@dqr.lint.allow \"R9\"]"
  in
  let expected =
    [
      "test/lint_fixtures/r9_bad.ml:11:57: [R9] " ^ msg;
      "test/lint_fixtures/r9_bad.ml:15:57: [R9] " ^ msg;
    ]
  in
  Alcotest.(check (list string)) "r9_bad golden" expected (strings (lint "r9_bad"))

(* ------------------------------------------------------------------ *)
(* Suppression: attributes and the allowlist file                      *)

let test_suppression_attributes () =
  (* suppressed.ml repeats violations of R1 and R2 and of the wall-clock
     rule, each under a [@dqr.lint.allow] in a different position
     (expression, let-binding, floating file-level, empty payload). *)
  Alcotest.(check (list string))
    "suppressed.ml is silent" []
    (strings (lint "suppressed"))

let test_parse_allowlist () =
  let parsed =
    Engine.parse_allowlist
      "# tolerated debt, see DESIGN.md section 9\n\
       R1 lib/harness/legacy.ml\n\
       \n\
       *  test/scratch\n"
  in
  Alcotest.(check (list (pair string string)))
    "parsed entries"
    [ ("R1", "lib/harness/legacy.ml"); ("*", "test/scratch") ]
    parsed

let test_allowlist_filters () =
  let with_allow allowlist = { fixture_cfg with Engine.allowlist } in
  (* Matching rule + path substring silences the file. *)
  Alcotest.(check int)
    "R1 allow silences r1_bad" 0
    (List.length (lint ~cfg:(with_allow [ ("R1", "lint_fixtures/r1_bad") ]) "r1_bad"));
  (* Wildcard rule matches everything on that path. *)
  Alcotest.(check int)
    "* allow silences r5_bad" 0
    (List.length (lint ~cfg:(with_allow [ ("*", "r5_bad") ]) "r5_bad"));
  (* Wrong rule id leaves the findings alone. *)
  Alcotest.(check int)
    "R2 allow does not touch r1_bad" 5
    (List.length (lint ~cfg:(with_allow [ ("R2", "r1_bad") ]) "r1_bad"));
  (* The new rules honour the allowlist through the same path. *)
  Alcotest.(check int)
    "R7 allow silences r7_bad" 0
    (List.length (lint ~cfg:(with_allow [ ("R7", "r7_bad") ]) "r7_bad"))

(* ------------------------------------------------------------------ *)
(* Scoping: rules only fire inside their declared subtrees             *)

let test_scoping () =
  let scoped = { Engine.default_config with exclude_paths = [] } in
  (* R1 is scoped to lib/ — the same fixture that shows 5 findings with
     scoping off shows none with scoping on. *)
  Alcotest.(check int)
    "R1 out of scope under test/" 0
    (List.length (lint ~cfg:scoped "r1_bad"));
  (* R2 applies everywhere outside lib/util/rng.ml, including test/. *)
  Alcotest.(check int)
    "R2 in scope under test/" 2
    (List.length (lint ~cfg:scoped "r2_bad"));
  (* The lifecycle rules are scoped to the node-side library subtrees:
     the same violating fixtures are vacuous under test/. *)
  Alcotest.(check int)
    "R6 out of scope under test/" 0
    (List.length (lint ~cfg:scoped "r6_bad"));
  Alcotest.(check int)
    "R8 out of scope under test/" 0
    (List.length (lint ~cfg:scoped "r8_bad"));
  Alcotest.(check int)
    "R9 out of scope under test/" 0
    (List.length (lint ~cfg:scoped "r9_bad"));
  (* The default config excludes the fixture tree entirely. *)
  Alcotest.(check int)
    "default config skips fixtures" 0
    (List.length (lint ~cfg:Engine.default_config "r2_bad"))

(* ------------------------------------------------------------------ *)
(* Report output: schema-2 JSON envelope                               *)

let test_json_shape () =
  let ds = lint "r2_bad" in
  (match ds with
  | d :: _ ->
    Alcotest.(check string)
      "single diagnostic json"
      "{\"rule\":\"R2\",\"file\":\"test/lint_fixtures/r2_bad.ml\",\"line\":3,\
       \"col\":14,\"message\":\"Stdlib.Random.int draws from the ambient \
       global generator; route randomness through Dq_util.Rng so runs replay \
       bit-for-bit\"}"
      (D.to_json d)
  | [] -> Alcotest.fail "r2_bad produced no diagnostics");
  let json = D.list_to_json ~rules:Rules.all ds in
  let has needle = contains json needle in
  Alcotest.(check bool) "schema version 2" true (has "\"version\":2");
  Alcotest.(check bool) "has count" true (has "\"count\":2");
  (* the envelope carries the full rule table with per-rule tallies *)
  Alcotest.(check bool)
    "rule table entry for R2 counts its findings" true
    (has "{\"id\":\"R2\",\"name\":\"no-ambient-randomness\"");
  Alcotest.(check bool) "R2 tally" true (has "\"findings\":2}");
  Alcotest.(check bool)
    "R9 present with zero findings" true
    (has "{\"id\":\"R9\",\"name\":\"no-silent-drop\"");
  Alcotest.(check bool)
    "envelope opens" true
    (String.length json > 0 && Char.equal json.[0] '{');
  Alcotest.(check string)
    "empty report golden"
    "{\"version\":2,\"count\":0,\"rules\":[],\"diagnostics\":[]}\n"
    (D.list_to_json ~rules:[] [])

(* ------------------------------------------------------------------ *)
(* Report output: SARIF 2.1.0                                          *)

let test_sarif_shape () =
  let ds = lint "r8_bad" in
  let sarif = Sarif.to_string ~version:Engine.version ~rules:Rules.all ds in
  let has needle = contains sarif needle in
  Alcotest.(check bool) "sarif version" true (has "\"version\": \"2.1.0\"");
  Alcotest.(check bool)
    "schema pointer" true
    (has "sarif-schema-2.1.0.json");
  Alcotest.(check bool) "tool name" true (has "\"name\": \"dqr-lint\"");
  Alcotest.(check bool)
    "tool version" true
    (has (Printf.sprintf "\"version\": \"%s\"" Engine.version));
  (* R8 is the 8th rule in the catalogue: ruleIndex 7 *)
  Alcotest.(check bool)
    "ruleId + ruleIndex" true
    (has "\"ruleId\":\"R8\",\"ruleIndex\":7");
  (* our columns are 0-based, SARIF's are 1-based: 27 -> 28 *)
  Alcotest.(check bool)
    "region is 1-based" true
    (has "\"region\":{\"startLine\":3,\"startColumn\":28}");
  Alcotest.(check bool)
    "artifact uri" true
    (has "\"uri\":\"test/lint_fixtures/r8_bad.ml\"");
  Alcotest.(check bool)
    "column kind" true
    (has "\"columnKind\": \"utf16CodeUnits\"")

(* Same fixture linted twice must serialize to the same bytes — the
   report is part of the CI contract (validate_lint.py diffs it). *)
let test_report_stability () =
  let render () =
    let ds = lint "r8_bad" @ lint "r7_bad" in
    let ds = List.sort_uniq D.compare ds in
    ( D.list_to_json ~rules:Rules.all ds,
      Sarif.to_string ~version:Engine.version ~rules:Rules.all ds )
  in
  let json1, sarif1 = render () in
  let json2, sarif2 = render () in
  Alcotest.(check string) "schema-2 bytes stable" json1 json2;
  Alcotest.(check string) "sarif bytes stable" sarif1 sarif2

(* ------------------------------------------------------------------ *)
(* The parallel driver and the incremental cache                       *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* A throwaway build dir holding copies of two fixture cmts, so the
   walk/cache behavior is observable with known contents. *)
let with_probe_dir f =
  let dir = "lint_cache_probe" in
  let cache = "lint_cache_probe.bin" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let cleanup () =
    Array.iter
      (fun n -> Sys.remove (Filename.concat dir n))
      (Sys.readdir dir);
    Sys.rmdir dir;
    if Sys.file_exists cache then Sys.remove cache
  in
  Fun.protect ~finally:cleanup (fun () -> f ~dir ~cache)

let test_cache_incremental () =
  with_probe_dir (fun ~dir ~cache ->
      write_file
        (Filename.concat dir "a.cmt")
        (read_file "lint_fixtures/r6_bad.cmt");
      write_file
        (Filename.concat dir "b.cmt")
        (read_file "lint_fixtures/r8_bad.cmt");
      let run () = Engine.lint_build_dir ~cache_file:cache fixture_cfg dir in
      (* Cold: everything analyzes. *)
      let ds1, errs1, st1 = run () in
      Alcotest.(check (list string)) "no load errors" [] errs1;
      Alcotest.(check (list string))
        "cold findings"
        [ "R6"; "R6"; "R8"; "R8"; "R8" ]
        (ids ds1);
      Alcotest.(check int) "cold: 2 cmts" 2 st1.Engine.cmts;
      Alcotest.(check int) "cold: 2 analyzed" 2 st1.Engine.analyzed;
      Alcotest.(check int) "cold: 0 hits" 0 st1.Engine.cache_hits;
      (* Warm: nothing re-analyzes, the report is byte-identical. *)
      let ds2, _, st2 = run () in
      Alcotest.(check int) "warm: 0 analyzed" 0 st2.Engine.analyzed;
      Alcotest.(check int) "warm: 2 hits" 2 st2.Engine.cache_hits;
      Alcotest.(check string)
        "warm report byte-identical"
        (D.list_to_json ~rules:Rules.all ds1)
        (D.list_to_json ~rules:Rules.all ds2);
      (* Touch one cmt (its content digest changes): only it re-analyzes. *)
      write_file
        (Filename.concat dir "b.cmt")
        (read_file "lint_fixtures/r9_bad.cmt");
      let ds3, _, st3 = run () in
      Alcotest.(check int) "touched: 1 analyzed" 1 st3.Engine.analyzed;
      Alcotest.(check int) "touched: 1 hit" 1 st3.Engine.cache_hits;
      Alcotest.(check (list string))
        "touched findings"
        [ "R6"; "R6"; "R9"; "R9" ]
        (ids ds3);
      (* A different config invalidates the whole cache (fingerprint):
         stale entries are never served across configurations. *)
      let other = { fixture_cfg with Engine.allowlist = [ ("R6", "r6") ] } in
      let ds4, _, st4 =
        Engine.lint_build_dir ~cache_file:cache other dir
      in
      Alcotest.(check int) "new config: all analyzed" 2 st4.Engine.analyzed;
      Alcotest.(check (list string)) "allowlisted config" [ "R9"; "R9" ]
        (ids ds4))

let test_parallel_matches_serial () =
  with_probe_dir (fun ~dir ~cache:_ ->
      List.iter
        (fun n ->
          write_file
            (Filename.concat dir (n ^ ".cmt"))
            (read_file (Filename.concat "lint_fixtures" (n ^ ".cmt"))))
        [ "r6_bad"; "r7_bad"; "r8_bad"; "r9_bad"; "r1_ok"; "r7_ok" ];
      let serial, _, _ = Engine.lint_build_dir ~jobs:1 fixture_cfg dir in
      let par, _, _ = Engine.lint_build_dir ~jobs:4 fixture_cfg dir in
      Alcotest.(check (list string))
        "jobs=4 report identical to jobs=1"
        (List.map D.to_string serial)
        (List.map D.to_string par))

(* ------------------------------------------------------------------ *)
(* Rule registry                                                       *)

let test_rule_registry () =
  Alcotest.(check int) "nine rules" 9 (List.length Rules.all);
  let id_of k =
    match Rules.find k with
    | Some (r : Rules.t) -> r.Rules.id
    | None -> Alcotest.failf "rule %s not found" k
  in
  Alcotest.(check string) "find by id" "R1" (id_of "R1");
  Alcotest.(check string) "find by name" "R3" (id_of "no-wall-clock");
  Alcotest.(check string) "find R5 by name" "R5" (id_of "domain-safety");
  Alcotest.(check string) "find R6 by name" "R6" (id_of "no-raw-timer");
  Alcotest.(check string) "find R7 by name" "R7" (id_of "ordered-fold");
  Alcotest.(check string) "find R8 by name" "R8" (id_of "no-partial-functions");
  Alcotest.(check string) "find R9 by name" "R9" (id_of "no-silent-drop");
  (match Rules.find "R10" with
  | None -> ()
  | Some _ -> Alcotest.fail "R10 should not resolve")

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "violating fixtures" `Quick test_bad_fixtures;
          Alcotest.test_case "clean fixtures" `Quick test_ok_fixtures;
          Alcotest.test_case "golden R2" `Quick test_golden_r2;
          Alcotest.test_case "golden R5" `Quick test_golden_r5;
          Alcotest.test_case "golden R5 post" `Quick test_golden_r5_post;
          Alcotest.test_case "golden R6" `Quick test_golden_r6;
          Alcotest.test_case "golden R7" `Quick test_golden_r7;
          Alcotest.test_case "golden R8" `Quick test_golden_r8;
          Alcotest.test_case "golden R9" `Quick test_golden_r9;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "attributes" `Quick test_suppression_attributes;
          Alcotest.test_case "parse allowlist" `Quick test_parse_allowlist;
          Alcotest.test_case "allowlist filtering" `Quick test_allowlist_filters;
        ] );
      ( "config",
        [
          Alcotest.test_case "scoping" `Quick test_scoping;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "sarif shape" `Quick test_sarif_shape;
          Alcotest.test_case "report stability" `Quick test_report_stability;
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
        ] );
      ( "engine",
        [
          Alcotest.test_case "incremental cache" `Quick test_cache_incremental;
          Alcotest.test_case "parallel = serial" `Quick
            test_parallel_matches_serial;
        ] );
    ]
