(* Message-level unit tests of the IQS and OQS server state machines,
   mirroring the paper's pseudocode (Figures 4 and 5) case by case.
   Servers are driven directly through [handle]; outgoing messages are
   captured by sink handlers on the peer nodes. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Clock = Dq_sim.Clock
module Config = Dq_core.Config
module M = Dq_core.Message
module Iqs = Dq_core.Iqs_server
module Oqs = Dq_core.Oqs_server
open Dq_storage

let key = Key.make ~volume:0 ~index:0

let lc c = Lc.make ~count:c ~node:9

(* Node 0 hosts the server under test; messages it sends to nodes 1 and
   2 are captured. *)
type world = {
  engine : Engine.t;
  net : M.t Net.t;
  config : Config.t;
  sent : (int * M.t) list ref; (* (destination, message), oldest first *)
}

let make_world () =
  let engine = Engine.create ~seed:3L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:1 () in
  let servers = Topology.servers topology in
  let config = Config.dqvl ~servers ~volume_lease_ms:1_000. ~proactive_renew:false () in
  let net = Net.create engine topology ~classify:M.classify () in
  let sent = ref [] in
  List.iter
    (fun node -> Net.register net ~node (fun ~src:_ msg -> sent := (node, msg) :: !sent))
    [ 1; 2; 3 ];
  { engine; net; config; sent }

let flush w = Engine.run ~until:(Engine.now w.engine +. 10_000.) w.engine

let captured w = List.rev !(w.sent)

let make_iqs w = Iqs.create ~net:w.net ~clock:(Clock.perfect w.engine) ~config:w.config ~me:0

let make_oqs w =
  Oqs.create ~net:w.net ~clock:(Clock.perfect w.engine) ~config:w.config
    ~rng:(Engine.split_rng w.engine) ~me:0

(* --- IQS: processLCReadRequest / processWriteRequest ------------------- *)

let test_iqs_lc_read_returns_global_clock () =
  let w = make_world () in
  let iqs = make_iqs w in
  Iqs.handle iqs ~src:1 (M.Lc_read_req { op = 7 });
  flush w;
  match captured w with
  | [ (1, M.Lc_read_reply { op = 7; lc }) ] ->
    Alcotest.(check bool) "initial clock is zero" true (Lc.equal lc Lc.zero)
  | _ -> Alcotest.fail "expected one Lc_read_reply to node 1"

let test_iqs_write_applies_only_newer () =
  let w = make_world () in
  let iqs = make_iqs w in
  Iqs.handle iqs ~src:1 (M.Iqs_write_req { op = 1; key; value = "new"; lc = lc 5 });
  Alcotest.(check string) "applied" "new" (Iqs.stored iqs key).Versioned.value;
  (* An older write must not clobber the value... *)
  Iqs.handle iqs ~src:1 (M.Iqs_write_req { op = 2; key; value = "old"; lc = lc 3 });
  Alcotest.(check string) "not regressed" "new" (Iqs.stored iqs key).Versioned.value;
  (* ...but is still acknowledged (it is ordered before the newer one). *)
  flush w;
  let acks =
    List.filter (fun (_, m) -> match m with M.Iqs_write_ack _ -> true | _ -> false) (captured w)
  in
  Alcotest.(check int) "both writes acknowledged" 2 (List.length acks);
  Alcotest.(check bool) "global clock advanced" true (Lc.equal (Iqs.logical_clock iqs) (lc 5))

let test_iqs_obj_renewal_grants_and_tracks () =
  let w = make_world () in
  let iqs = make_iqs w in
  Iqs.handle iqs ~src:1 (M.Iqs_write_req { op = 1; key; value = "v"; lc = lc 2 });
  Iqs.handle iqs ~src:1 (M.Obj_renew_req { key; t0 = 0. });
  flush w;
  let grants =
    List.filter_map
      (fun (dst, m) -> match m with M.Obj_renew_reply { grant } -> Some (dst, grant) | _ -> None)
      (captured w)
  in
  (match grants with
  | [ (1, grant) ] ->
    Alcotest.(check string) "grant carries the value" "v" grant.M.g_value;
    Alcotest.(check bool) "grant carries lastWriteLC" true (Lc.equal grant.M.g_lc (lc 2))
  | _ -> Alcotest.fail "expected one grant to node 1");
  (* lastReadLC := lastWriteLC at grant time. *)
  Alcotest.(check bool) "lastReadLC bumped" true (Lc.equal (Iqs.last_read_lc iqs key) (lc 2))

let test_iqs_suppress_vs_through () =
  let w = make_world () in
  let iqs = make_iqs w in
  (* Node 1 acknowledges an invalidation newer than any grant: i now
     knows node 1 holds no valid callback, so a later write needs no
     invalidation to it (write suppress, case a). *)
  Iqs.handle iqs ~src:1 (M.Inval_ack { key; lc = lc 1 });
  Alcotest.(check bool) "ack recorded" true (Lc.equal (Iqs.last_ack_lc iqs key ~oqs:1) (lc 1));
  Iqs.handle iqs ~src:2 (M.Inval_ack { key; lc = lc 1 });
  Iqs.handle iqs ~src:0 (M.Inval_ack { key; lc = lc 1 });
  w.sent := [];
  Iqs.handle iqs ~src:3 (M.Iqs_write_req { op = 9; key; value = "w"; lc = lc 2 });
  flush w;
  let invals =
    List.filter (fun (_, m) -> match m with M.Inval _ -> true | _ -> false) (captured w)
  in
  Alcotest.(check int) "suppressed: no invalidations" 0 (List.length invals);
  let acked =
    List.exists
      (fun (dst, m) -> dst = 3 && match m with M.Iqs_write_ack { op = 9; _ } -> true | _ -> false)
      (captured w)
  in
  Alcotest.(check bool) "write acknowledged" true acked

let test_iqs_vol_renewal_carries_delayed_invals () =
  let w = make_world () in
  let iqs = make_iqs w in
  (* Grant node 1 a volume lease, let it expire, then write: the
     invalidation must be queued as delayed and delivered with node 1's
     next renewal. *)
  Iqs.handle iqs ~src:1 (M.Vol_renew_req { volume = 0; t0 = 0.; want = None; epoch = 0 });
  Iqs.handle iqs ~src:1 (M.Obj_renew_req { key; t0 = 0. });
  flush w;
  (* Advance past the 1 s lease. *)
  ignore (Engine.schedule w.engine ~delay:2_000. (fun () -> ()));
  Engine.run w.engine;
  w.sent := [];
  Iqs.handle iqs ~src:3 (M.Iqs_write_req { op = 1; key; value = "w"; lc = lc 4 });
  flush w;
  Alcotest.(check int) "one delayed invalidation queued" 1
    (Iqs.delayed_count iqs ~volume:0 ~oqs:1);
  let direct_invals_to_1 =
    List.filter (fun (dst, m) -> dst = 1 && match m with M.Inval _ -> true | _ -> false)
      (captured w)
  in
  Alcotest.(check int) "no direct invalidation to expired node" 0
    (List.length direct_invals_to_1);
  (* The renewal delivers it... *)
  w.sent := [];
  Iqs.handle iqs ~src:1 (M.Vol_renew_req { volume = 0; t0 = 2_000.; want = None; epoch = 0 });
  flush w;
  (match
     List.filter_map
       (fun (dst, m) ->
         match m with M.Vol_renew_reply { delayed; _ } when dst = 1 -> Some delayed | _ -> None)
       (captured w)
   with
  | [ [ (k, klc) ] ] ->
    Alcotest.(check bool) "delayed inval for the key" true (Key.equal k key);
    Alcotest.(check bool) "at the write's clock" true (Lc.equal klc (lc 4))
  | _ -> Alcotest.fail "expected one renewal reply with one delayed invalidation");
  (* ...and the acknowledgment clears the queue. *)
  Iqs.handle iqs ~src:1 (M.Vol_renew_ack { volume = 0; upto = lc 4 });
  Alcotest.(check int) "queue cleared" 0 (Iqs.delayed_count iqs ~volume:0 ~oqs:1)

let test_iqs_epoch_advances_on_overflow () =
  let w = make_world () in
  let config = { w.config with Config.max_delayed = 2 } in
  let iqs = Iqs.create ~net:w.net ~clock:(Clock.perfect w.engine) ~config ~me:0 in
  Iqs.handle iqs ~src:1 (M.Vol_renew_req { volume = 0; t0 = 0.; want = None; epoch = 0 });
  (* Install callbacks on three objects. *)
  let keys = List.init 3 (fun i -> Key.make ~volume:0 ~index:i) in
  List.iter (fun k -> Iqs.handle iqs ~src:1 (M.Obj_renew_req { key = k; t0 = 0. })) keys;
  ignore (Engine.schedule w.engine ~delay:2_000. (fun () -> ()));
  Engine.run w.engine;
  List.iteri
    (fun i k ->
      Iqs.handle iqs ~src:3
        (M.Iqs_write_req { op = i; key = k; value = "w"; lc = lc (i + 1) }))
    keys;
  flush w;
  Alcotest.(check int) "epoch advanced" 1 (Iqs.epoch iqs ~volume:0 ~oqs:1);
  Alcotest.(check bool) "queue within bound" true
    (Iqs.delayed_count iqs ~volume:0 ~oqs:1 <= 2)

(* --- OQS: processInval / processRenewReply / processVLRenewReply -------- *)

let test_oqs_inval_is_monotone () =
  let w = make_world () in
  let oqs = make_oqs w in
  Oqs.handle oqs ~src:1 (M.Inval { key; lc = lc 5 });
  (* A stale invalidation must not regress the per-node clock. *)
  Oqs.handle oqs ~src:1 (M.Inval { key; lc = lc 3 });
  flush w;
  let acks =
    List.filter_map
      (fun (dst, m) -> match m with M.Inval_ack { lc; _ } when dst = 1 -> Some lc | _ -> None)
      (captured w)
  in
  Alcotest.(check int) "both invalidations acknowledged" 2 (List.length acks);
  Alcotest.(check bool) "object invalid" false (Oqs.object_valid_from oqs key ~iqs:1)

let test_oqs_stale_grant_does_not_validate () =
  (* The guard on line 42 of Figure 5: a renewal reply older than an
     already-received invalidation must not mark the object valid. *)
  let w = make_world () in
  let oqs = make_oqs w in
  Oqs.handle oqs ~src:1 (M.Inval { key; lc = lc 5 });
  Oqs.handle oqs ~src:1
    (M.Obj_renew_reply
       { grant = { M.g_key = key; g_epoch = 0; g_lc = lc 3; g_value = "stale";
                   g_lease_ms = infinity; g_t0 = 0. } });
  Alcotest.(check bool) "still invalid" false (Oqs.object_valid_from oqs key ~iqs:1);
  (* A grant at (or beyond) the invalidation's clock validates. *)
  Oqs.handle oqs ~src:1
    (M.Obj_renew_reply
       { grant = { M.g_key = key; g_epoch = 0; g_lc = lc 5; g_value = "fresh";
                   g_lease_ms = infinity; g_t0 = 0. } });
  Alcotest.(check bool) "validated by equal clock" true (Oqs.object_valid_from oqs key ~iqs:1);
  Alcotest.(check string) "value is the freshest" "fresh" (Oqs.cached oqs key).Versioned.value

let test_oqs_vol_reply_applies_delayed_and_acks () =
  let w = make_world () in
  let oqs = make_oqs w in
  (* Validate the object first. *)
  Oqs.handle oqs ~src:1
    (M.Obj_renew_reply
       { grant = { M.g_key = key; g_epoch = 0; g_lc = lc 1; g_value = "v1";
                   g_lease_ms = infinity; g_t0 = 0. } });
  Oqs.handle oqs ~src:1
    (M.Vol_renew_reply
       { volume = 0; lease_ms = 1_000.; epoch = 0; t0 = 0.; delayed = [ (key, lc 4) ];
         grant = None });
  Alcotest.(check bool) "volume valid" true (Oqs.volume_valid_from oqs ~volume:0 ~iqs:1);
  Alcotest.(check bool) "delayed invalidation applied" false
    (Oqs.object_valid_from oqs key ~iqs:1);
  flush w;
  let acks =
    List.filter_map
      (fun (dst, m) ->
        match m with M.Vol_renew_ack { upto; _ } when dst = 1 -> Some upto | _ -> None)
      (captured w)
  in
  match acks with
  | [ upto ] -> Alcotest.(check bool) "acked up to the delayed clock" true (Lc.equal upto (lc 4))
  | _ -> Alcotest.fail "expected one volume renewal acknowledgment"

let test_oqs_epoch_mismatch_invalidates () =
  let w = make_world () in
  let oqs = make_oqs w in
  Oqs.handle oqs ~src:1
    (M.Obj_renew_reply
       { grant = { M.g_key = key; g_epoch = 0; g_lc = lc 1; g_value = "v";
                   g_lease_ms = infinity; g_t0 = 0. } });
  Oqs.handle oqs ~src:1
    (M.Vol_renew_reply
       { volume = 0; lease_ms = 1_000.; epoch = 0; t0 = 0.; delayed = []; grant = None });
  Alcotest.(check bool) "valid under epoch 0" true (Oqs.object_valid_from oqs key ~iqs:1);
  (* A renewal with a higher epoch retires every object lease at once. *)
  Oqs.handle oqs ~src:1
    (M.Vol_renew_reply
       { volume = 0; lease_ms = 1_000.; epoch = 1; t0 = 1.; delayed = []; grant = None });
  Alcotest.(check bool) "epoch mismatch invalidates" false
    (Oqs.object_valid_from oqs key ~iqs:1)

let test_oqs_expired_volume_blocks_validity () =
  let w = make_world () in
  let oqs = make_oqs w in
  Oqs.handle oqs ~src:1
    (M.Vol_renew_reply
       { volume = 0; lease_ms = 1_000.; epoch = 0; t0 = 0.; delayed = []; grant = None });
  Alcotest.(check bool) "valid now" true (Oqs.volume_valid_from oqs ~volume:0 ~iqs:1);
  ignore (Engine.schedule w.engine ~delay:2_000. (fun () -> ()));
  Engine.run w.engine;
  Alcotest.(check bool) "expired later" false (Oqs.volume_valid_from oqs ~volume:0 ~iqs:1)

let () =
  Alcotest.run "server_units"
    [
      ( "iqs (figure 4)",
        [
          Alcotest.test_case "lc read" `Quick test_iqs_lc_read_returns_global_clock;
          Alcotest.test_case "write ordering" `Quick test_iqs_write_applies_only_newer;
          Alcotest.test_case "object renewal" `Quick test_iqs_obj_renewal_grants_and_tracks;
          Alcotest.test_case "suppress vs through" `Quick test_iqs_suppress_vs_through;
          Alcotest.test_case "delayed invalidations" `Quick
            test_iqs_vol_renewal_carries_delayed_invals;
          Alcotest.test_case "epoch overflow" `Quick test_iqs_epoch_advances_on_overflow;
        ] );
      ( "oqs (figure 5)",
        [
          Alcotest.test_case "inval monotone" `Quick test_oqs_inval_is_monotone;
          Alcotest.test_case "stale grant guard" `Quick test_oqs_stale_grant_does_not_validate;
          Alcotest.test_case "volume reply" `Quick test_oqs_vol_reply_applies_delayed_and_acks;
          Alcotest.test_case "epoch mismatch" `Quick test_oqs_epoch_mismatch_invalidates;
          Alcotest.test_case "volume expiry" `Quick test_oqs_expired_volume_blocks_validity;
        ] );
    ]
