(* The age-of-information sink: a golden scripted saw-tooth, the shared
   histogram quantile path, equivalence with the offline staleness /
   age oracles on real protocol runs, and off-path determinism (an
   attached AoI sink must not change what the simulation computes). *)

module Engine = Dq_sim.Engine
module Bus = Dq_telemetry.Bus
module Event = Dq_telemetry.Event
module Aoi = Dq_telemetry.Aoi
module Metrics = Dq_telemetry.Metrics
module Topology = Dq_net.Topology
module Spec = Dq_workload.Spec
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Staleness = Dq_harness.Staleness
module Histogram = Dq_util.Histogram
module Stats = Dq_util.Stats

let served ~op ~kind ~key ~lc_count ~lc_node ~start_ms =
  Event.Op_served { op; client = 0; kind; key; lc_count; lc_node; start_ms }

(* --- scripted golden ------------------------------------------------------ *)

(* One key, two writes, four reads, every number checkable by hand.

     t=50   read  "j" @(0,0)   initial value: age 0, fresh
     t=100  write "k" @(1,0)   saw-tooth starts
     t=150  read  "k" @(1,0)   age 50, fresh
     t=300  write "k" @(2,0)   gap 200 -> area 20000, peak 200
     t=400  read  "k" @(1,0)   invoked at 350 > 300: stale, behind 100; age 300
     t=500  read  "k" @(2,0)   age 200, fresh
     t=600  (note)             watermark only

   Closing at 600: tail gap 300 -> area 65000 over span 500. *)
let test_scripted_golden () =
  let t = Aoi.create () in
  let sink = Aoi.sink t in
  sink ~time_ms:50. (served ~op:0 ~kind:"read" ~key:"j" ~lc_count:0 ~lc_node:0 ~start_ms:10.);
  sink ~time_ms:100. (served ~op:1 ~kind:"write" ~key:"k" ~lc_count:1 ~lc_node:0 ~start_ms:60.);
  sink ~time_ms:150. (served ~op:2 ~kind:"read" ~key:"k" ~lc_count:1 ~lc_node:0 ~start_ms:120.);
  sink ~time_ms:300. (served ~op:3 ~kind:"write" ~key:"k" ~lc_count:2 ~lc_node:0 ~start_ms:250.);
  sink ~time_ms:400. (served ~op:4 ~kind:"read" ~key:"k" ~lc_count:1 ~lc_node:0 ~start_ms:350.);
  sink ~time_ms:500. (served ~op:5 ~kind:"read" ~key:"k" ~lc_count:2 ~lc_node:0 ~start_ms:450.);
  sink ~time_ms:600. (Event.Note { src = "test"; msg = "watermark" });
  let s = Aoi.summary t in
  Alcotest.(check int) "keys tracked (reads alone track nothing)" 1 s.Aoi.keys_tracked;
  Alcotest.(check int) "reads checked" 4 s.Aoi.reads_checked;
  Alcotest.(check int) "stale reads" 1 s.Aoi.stale_reads;
  Alcotest.(check (float 0.)) "stale fraction" 0.25 s.Aoi.stale_fraction;
  Alcotest.(check (float 0.)) "mean behind" 100. s.Aoi.mean_behind_ms;
  Alcotest.(check (float 0.)) "max behind" 100. s.Aoi.max_behind_ms;
  Alcotest.(check int) "max versions behind" 1 s.Aoi.max_versions_behind;
  Alcotest.(check (float 0.)) "mean read age" 137.5 s.Aoi.mean_read_age_ms;
  Alcotest.(check (float 0.)) "max read age" 300. s.Aoi.max_read_age_ms;
  Alcotest.(check (float 1e-9)) "time-averaged age = 65000/500" 130. s.Aoi.time_avg_age_ms;
  Alcotest.(check (float 0.)) "peak age is the trailing gap" 300. s.Aoi.peak_age_ms;
  (* [summary] is a pure snapshot: closing the integral at an earlier
     instant must reproduce the mid-run saw-tooth exactly. *)
  let mid = Aoi.summary ~now:300. t in
  Alcotest.(check (float 1e-9)) "mid-run time-averaged age = 20000/200" 100.
    mid.Aoi.time_avg_age_ms;
  Alcotest.(check (float 0.)) "mid-run peak" 200. mid.Aoi.peak_age_ms;
  (* The read-age distribution feeds the shared histogram. *)
  Alcotest.(check int) "read-age samples" 4 (Histogram.count (Aoi.read_age_histogram t));
  Alcotest.(check int) "behind samples" 1 (Histogram.count (Aoi.behind_histogram t))

(* A read can return a version fresher than any completed write (its
   write's response still in flight): age 0, never stale. *)
let test_in_flight_write_age_zero () =
  let t = Aoi.create () in
  let sink = Aoi.sink t in
  sink ~time_ms:100. (served ~op:0 ~kind:"write" ~key:"k" ~lc_count:1 ~lc_node:0 ~start_ms:60.);
  sink ~time_ms:150. (served ~op:1 ~kind:"read" ~key:"k" ~lc_count:2 ~lc_node:1 ~start_ms:120.);
  let s = Aoi.summary t in
  Alcotest.(check int) "read checked" 1 s.Aoi.reads_checked;
  Alcotest.(check int) "not stale" 0 s.Aoi.stale_reads;
  Alcotest.(check (float 0.)) "age 0" 0. s.Aoi.mean_read_age_ms

let test_empty_summary () =
  let t = Aoi.create () in
  let s = Aoi.summary t in
  Alcotest.(check int) "no keys" 0 s.Aoi.keys_tracked;
  Alcotest.(check (float 0.)) "stale fraction 0" 0. s.Aoi.stale_fraction;
  Alcotest.(check (float 0.)) "time-averaged age 0" 0. s.Aoi.time_avg_age_ms

(* --- the single quantile code path ---------------------------------------- *)

let test_histogram_quantile () =
  let h = Histogram.of_samples ~buckets:[ 10.; 20.; 30. ] [ 5.; 15.; 15.; 25. ] in
  Alcotest.(check (float 1e-9)) "q=0 starts at 0" 0. (Histogram.quantile h 0.);
  Alcotest.(check (float 1e-9)) "median interpolates in its bucket" 15.
    (Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "q=1 is the top of the last hit bucket" 30.
    (Histogram.quantile h 1.);
  Histogram.add h 100.;
  Alcotest.(check (float 1e-9)) "overflow bucket reports the last finite bound" 30.
    (Histogram.quantile h 1.);
  let empty = Histogram.create ~buckets:[ 1. ] in
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Histogram.quantile empty 0.5));
  Alcotest.check_raises "q outside [0,1] rejected"
    (Invalid_argument "Histogram.quantile: q must be in [0, 1]") (fun () ->
      ignore (Histogram.quantile h 1.5))

(* --- equivalence with the offline oracles --------------------------------- *)

(* Run a real protocol with the sink attached, then replay the recorded
   history through [Staleness.measure] / [Staleness.measure_age]. The
   two are independent implementations of one definition: counts and
   maxima must agree exactly; means only up to float summation order. *)
let run_with_aoi ~protocol ~seed =
  let engine = Engine.create ~seed () in
  let aoi = Aoi.create () in
  Bus.subscribe (Engine.telemetry engine) (Aoi.sink aoi);
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let builder =
    match Registry.find protocol with
    | Some b -> b
    | None -> Alcotest.failf "unknown protocol %s" protocol
  in
  let instance = builder.Registry.build engine topology () in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.3;
      sharing = Spec.Shared_uniform { objects = 4 };
    }
  in
  let config = { (Driver.default_config spec) with Driver.ops_per_client = 40 } in
  let result = Driver.run engine topology instance.Registry.api config in
  ( Aoi.summary aoi,
    Staleness.measure result.Driver.history,
    Staleness.measure_age result.Driver.history )

let check_matches_oracle ~label (s : Aoi.summary) (oracle : Staleness.report)
    (age : Staleness.age_report) =
  let check_int what = Alcotest.(check int) (label ^ ": " ^ what) in
  let close what = Alcotest.(check (float 1e-6)) (label ^ ": " ^ what) in
  check_int "reads checked" oracle.Staleness.checked s.Aoi.reads_checked;
  check_int "stale reads" (List.length oracle.Staleness.stale) s.Aoi.stale_reads;
  check_int "max versions behind" oracle.Staleness.max_versions_behind
    s.Aoi.max_versions_behind;
  close "max behind" oracle.Staleness.max_behind_ms s.Aoi.max_behind_ms;
  close "mean behind" oracle.Staleness.mean_behind_ms s.Aoi.mean_behind_ms;
  check_int "reads examined for age" age.Staleness.reads s.Aoi.reads_checked;
  close "max read age" age.Staleness.max_age_ms s.Aoi.max_read_age_ms;
  close "mean read age" age.Staleness.mean_age_ms s.Aoi.mean_read_age_ms

let test_matches_oracle () =
  (* rowa-async serves local reads with no freshness bound, so shared
     objects make it actually stale — without that the equivalence
     would hold vacuously at zero. *)
  let stale_seen = ref 0 in
  List.iter
    (fun (protocol, seeds) ->
      List.iter
        (fun seed ->
          let s, oracle, age = run_with_aoi ~protocol ~seed in
          Alcotest.(check bool)
            (protocol ^ ": reads completed") true (s.Aoi.reads_checked > 0);
          check_matches_oracle
            ~label:(Printf.sprintf "%s/%Ld" protocol seed)
            s oracle age;
          stale_seen := !stale_seen + s.Aoi.stale_reads)
        seeds)
    [
      ("rowa-async", [ 1L; 2L; 3L ]);
      ("majority", [ 7L ]);
      ("dqvl-paper", [ 7L ]);
      ("primary-backup", [ 7L ]);
    ];
  Alcotest.(check bool) "equivalence exercised nonzero staleness" true (!stale_seen > 0)

(* --- off-path determinism ------------------------------------------------- *)

let run_dqvl ~subscribe () =
  let engine = Engine.create ~seed:21L () in
  if subscribe then begin
    Bus.subscribe (Engine.telemetry engine) (Aoi.sink (Aoi.create ()));
    Bus.subscribe (Engine.telemetry engine) (Metrics.sink (Metrics.create ()))
  end;
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let builder = Registry.dqvl () in
  let instance = builder.Registry.build engine topology () in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.3;
      sharing = Spec.Shared_uniform { objects = 4 };
    }
  in
  let config = { (Driver.default_config spec) with Driver.ops_per_client = 25 } in
  Driver.run engine topology instance.Registry.api config

let test_sink_off_bit_identical () =
  let bare = run_dqvl ~subscribe:false () in
  let observed = run_dqvl ~subscribe:true () in
  Alcotest.(check int) "completed" bare.Driver.completed observed.Driver.completed;
  Alcotest.(check int) "failed" bare.Driver.failed observed.Driver.failed;
  Alcotest.(check int) "remote messages" bare.Driver.remote_messages
    observed.Driver.remote_messages;
  Alcotest.(check int) "remote bytes" bare.Driver.remote_bytes observed.Driver.remote_bytes;
  Alcotest.(check (float 0.)) "elapsed bit-identical" bare.Driver.elapsed_ms
    observed.Driver.elapsed_ms;
  Alcotest.(check (list (float 0.)))
    "latency samples bit-identical"
    (Stats.to_list bare.Driver.all_latency)
    (Stats.to_list observed.Driver.all_latency);
  Alcotest.(check bool) "histories identical" true
    (bare.Driver.history = observed.Driver.history)

let () =
  Alcotest.run "aoi"
    [
      ( "scripted",
        [
          Alcotest.test_case "golden saw-tooth" `Quick test_scripted_golden;
          Alcotest.test_case "in-flight write reads age 0" `Quick
            test_in_flight_write_age_zero;
          Alcotest.test_case "empty summary" `Quick test_empty_summary;
        ] );
      ( "histogram",
        [ Alcotest.test_case "shared quantile path" `Quick test_histogram_quantile ] );
      ( "oracle",
        [ Alcotest.test_case "online sink matches offline oracles" `Quick test_matches_oracle ]
      );
      ( "determinism",
        [
          Alcotest.test_case "aoi sink does not perturb the run" `Quick
            test_sink_off_bit_identical;
        ] );
    ]
