(* Crash-recovery realism: amnesia wipes durable state; a wiped IQS
   replica refuses all service while it state-transfers from a read
   quorum of peers, then rejoins after the lease quarantine; OQS caches
   and leases are volatile and get re-acquired; the timer incarnation
   guard keeps every pre-crash retransmission loop dead across
   recovery; and all five campaign protocols survive seeded amnesia
   storms with the regular checker green. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Clock = Dq_sim.Clock
module Cluster = Dq_core.Cluster
module Config = Dq_core.Config
module M = Dq_core.Message
module Iqs = Dq_core.Iqs_server
module Oqs = Dq_core.Oqs_server
module Retry = Dq_rpc.Retry
module Registry = Dq_harness.Registry
module Invariant = Dq_harness.Invariant
module Nemesis = Dq_harness.Nemesis
module Fuzz = Dq_harness.Fuzz
module Rng = Dq_util.Rng
module R = Dq_intf.Replication
open Dq_storage

let key = Key.make ~volume:0 ~index:0

(* {2 Timer incarnation guard} *)

(* A retransmission loop armed before a crash must never fire again —
   not while the node is down, and not after it recovers either: the
   crash bumps the node's incarnation, and [Net.timer] callbacks check
   it. Without the guard, a recovered node would replay stale QRPC
   rounds from its previous life. *)
let test_timer_guard_survives_amnesia () =
  let engine = Engine.create ~seed:7L () in
  let topology = Topology.make ~n_servers:2 ~n_clients:1 () in
  let net = Net.create engine topology ~classify:(fun () -> "m") () in
  List.iter (fun node -> Net.register net ~node (fun ~src:_ () -> ())) [ 0; 1; 2 ];
  let attempts = ref 0 in
  let loop =
    Retry.start
      ~timer:(fun ~delay_ms action -> Net.timer net ~node:0 ~delay_ms action)
      ~attempt:(fun ~round:_ -> incr attempts)
      ~complete:(fun () -> false)
      ~on_complete:(fun () -> ())
      ~timeout_ms:100. ~backoff:1. ()
  in
  Engine.run ~until:450. engine;
  let before = !attempts in
  Alcotest.(check bool) "loop was live before the crash" true (before >= 3);
  Net.crash_amnesia net 0;
  Engine.run ~until:1_000. engine;
  Net.recover net 0;
  Engine.run ~until:10_000. engine;
  Alcotest.(check int) "old incarnation's loop stays dead after recovery" before !attempts;
  Retry.cancel loop

(* {2 Wiped IQS: no service until synced} *)

(* Drive a standalone IQS replica through a wipe by hand and watch the
   wire: while [Syncing] it must answer neither logical-clock reads nor
   writes (its empty state would otherwise break quorum intersection),
   only solicit [Sync_resp]s; once a read quorum of peers has answered
   every volume chunk and the quarantine has passed, it serves again
   with the merged state. *)
let test_wiped_iqs_serves_nothing_until_synced () =
  let engine = Engine.create ~seed:11L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:1 () in
  let servers = Topology.servers topology in
  let config = Config.dqvl ~servers ~volume_lease_ms:400. ~proactive_renew:false () in
  let net = Net.create engine topology ~classify:M.classify () in
  let log1 = ref [] in
  Net.register net ~node:0 (fun ~src:_ _ -> ());
  Net.register net ~node:1 (fun ~src:_ msg -> log1 := msg :: !log1);
  Net.register net ~node:2 (fun ~src:_ _ -> ());
  Net.register net ~node:3 (fun ~src:_ _ -> ());
  let iqs = Iqs.create ~net ~clock:(Clock.perfect engine) ~config ~me:0 in
  let wlc = Lc.make ~count:1 ~node:1 in
  Iqs.handle iqs ~src:1 (M.Iqs_write_req { op = 1; key; value = "x"; lc = wlc });
  Engine.run ~until:1_000. engine;
  let acked log =
    List.exists (function M.Iqs_write_ack _ | M.Lc_read_reply _ -> true | _ -> false) log
  in
  Alcotest.(check bool) "pre-wipe write acked" true (acked !log1);
  Alcotest.(check string) "pre-wipe value stored" "x" (Iqs.stored iqs key).Versioned.value;
  (* The wipe: durable state gone, replica enters Syncing. *)
  Iqs.on_recover iqs ~wiped:true;
  Alcotest.(check bool) "syncing after wipe" true (Iqs.is_syncing iqs);
  Alcotest.(check bool) "marked wiped" true (Iqs.was_wiped iqs);
  Alcotest.(check bool) "store wiped" true
    Lc.((Iqs.stored iqs key).Versioned.lc <= Lc.zero);
  log1 := [];
  Iqs.handle iqs ~src:1 (M.Lc_read_req { op = 2 });
  Iqs.handle iqs ~src:1 (M.Iqs_write_req { op = 3; key; value = "y"; lc = Lc.make ~count:2 ~node:1 });
  Engine.run ~until:Engine.(now engine +. 600.) engine;
  Alcotest.(check bool) "no ack, no reply while syncing" false (acked !log1);
  let session =
    List.find_map (function M.Sync_req { session; _ } -> Some session | _ -> None) !log1
  in
  (match session with
  | None -> Alcotest.fail "sync loop never solicited peers"
  | Some session ->
    (* A read quorum of peers (2 of {1,2} under 3-node majority)
       answers the only volume chunk; the transfer completes. *)
    let resp =
      M.Sync_resp
        { session; volume = 0; max_volume = 0; global_lc = wlc; objects = [ (key, wlc, "x") ] }
    in
    Iqs.handle iqs ~src:1 resp;
    Iqs.handle iqs ~src:2 resp);
  (match Iqs.sync_progress iqs with
  | Some (_, bytes, objects) ->
    Alcotest.(check int) "one object transferred" 1 objects;
    Alcotest.(check bool) "non-zero sync bytes" true (bytes > 0)
  | None -> ());
  (* Quarantine: volume_lease * (1 + 2*drift) + slack past the
     recovery, so every pre-wipe lease has lapsed at its holder. *)
  Engine.run ~until:Engine.(now engine +. 2_000.) engine;
  Alcotest.(check bool) "sync complete after quorum + quarantine" false (Iqs.is_syncing iqs);
  Alcotest.(check string) "pre-wipe value recovered" "x" (Iqs.stored iqs key).Versioned.value;
  Alcotest.(check bool) "logical clock restored" true Lc.(Iqs.logical_clock iqs >= wlc);
  log1 := [];
  Iqs.handle iqs ~src:1 (M.Iqs_write_req { op = 4; key; value = "z"; lc = Lc.make ~count:5 ~node:1 });
  Engine.run ~until:Engine.(now engine +. 1_000.) engine;
  Alcotest.(check bool) "writes acked again once active" true (acked !log1);
  Alcotest.(check string) "post-sync write applied" "z" (Iqs.stored iqs key).Versioned.value

(* {2 Cluster-level: mid-QRPC amnesia, then full service again} *)

let test_mid_qrpc_amnesia_recovery () =
  let engine = Engine.create ~seed:21L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:2 () in
  let servers = Topology.servers topology in
  let config = Config.dqvl ~servers ~volume_lease_ms:500. ~proactive_renew:false () in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let net = Cluster.net cluster in
  let violations = Invariant.install_periodic engine cluster ~keys:[ key ] ~every_ms:50. ~until_ms:60_000. in
  let client = 3 in
  (* Crash the coordinating server while its write QRPC is in flight:
     the request is mid-retransmission when the incarnation ends. *)
  api.R.submit_write ~client ~server:0 key "w1" (fun _ -> ());
  ignore (Engine.schedule engine ~delay:10. (fun () -> Net.crash_amnesia net 0));
  Engine.run ~until:2_000. engine;
  Net.recover net 0;
  (* Wait out state transfer + quarantine. *)
  Engine.run ~until:15_000. engine;
  (match Cluster.iqs_server cluster 0 with
  | Some iqs ->
    Alcotest.(check bool) "server 0 was wiped" true (Iqs.was_wiped iqs);
    Alcotest.(check bool) "server 0 caught up" false (Iqs.is_syncing iqs)
  | None -> Alcotest.fail "server 0 has no IQS role");
  (* The cluster serves again end to end, through the recovered node's
     peers and through the recovered node itself. *)
  let got = ref [] in
  api.R.submit_write ~client ~server:1 key "w2" (fun _ ->
      api.R.submit_read ~client ~server:0 key (fun r -> got := r.R.read_value :: !got));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (list string)) "post-recovery read sees the fresh write" [ "w2" ] !got;
  Alcotest.(check int) "safety invariant held throughout" 0 (List.length !violations)

(* {2 OQS lease re-acquisition after a wipe} *)

let test_oqs_reacquires_after_wipe () =
  let engine = Engine.create ~seed:33L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:2 () in
  let servers = Topology.servers topology in
  let config = Config.dqvl ~servers ~volume_lease_ms:800. ~proactive_renew:false () in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let net = Cluster.net cluster in
  let client = 3 in
  let pre = ref [] in
  api.R.submit_write ~client ~server:0 key "v1" (fun _ ->
      api.R.submit_read ~client ~server:2 key (fun r -> pre := r.R.read_value :: !pre));
  Engine.run ~until:20_000. engine;
  Alcotest.(check (list string)) "pre-wipe read" [ "v1" ] !pre;
  (* Wipe server 2: its IQS state-transfers; its OQS cache and leases
     are volatile and come back empty, condition C freshly violated. *)
  Net.crash_amnesia net 2;
  Engine.run ~until:Engine.(now engine +. 500.) engine;
  Net.recover net 2;
  Engine.run ~until:Engine.(now engine +. 12_000.) engine;
  (match Cluster.oqs_server cluster 2 with
  | Some oqs ->
    Alcotest.(check bool) "cache invalid right after recovery" false
      (Oqs.is_locally_valid oqs key)
  | None -> Alcotest.fail "server 2 has no OQS role");
  (* A read through the wiped server re-acquires volume and object
     leases from the IQS from scratch and serves the current value. *)
  let post = ref [] in
  let valid_at_reply = ref None in
  api.R.submit_read ~client ~server:2 key (fun r ->
      post := r.R.read_value :: !post;
      (* Sample condition C at reply time, while the fresh leases are
         still within their terms. *)
      match Cluster.oqs_server cluster 2 with
      | Some oqs -> valid_at_reply := Some (Oqs.is_locally_valid oqs key)
      | None -> ());
  Engine.run ~until:Engine.(now engine +. 30_000.) engine;
  Alcotest.(check (list string)) "post-wipe read re-acquires and serves" [ "v1" ] !post;
  Alcotest.(check (option bool)) "condition C re-established" (Some true) !valid_at_reply

(* {2 Seeded amnesia storms across all five campaign protocols} *)

(* The campaign gate in miniature: one seeded amnesia-storm scenario
   per protocol, regular checker on (ROWA-Async exempt by design), and
   recovery actually exercised. A recovery that starts just before the
   workload drains may not finish its transfer before the driver stops
   stepping the engine, so transfer completion (with non-zero bytes
   moved) is asserted across the five protocols rather than per run. *)
let test_amnesia_storm_all_protocols () =
  let total_done = ref 0 in
  let total_bytes = ref 0 in
  List.iter
    (fun (builder : Registry.builder) ->
      let seed = 4242L in
      let s = Fuzz.scenario_of_seed seed in
      let rng = Rng.create (Int64.logxor seed 0x9E3779B97F4A7C15L) in
      let program = Nemesis.generate rng Nemesis.Amnesia ~n_servers:s.Fuzz.n_servers in
      let s = { s with Fuzz.crashes = false; partition = false; nemesis = Some program } in
      let check_regular = builder.Registry.name <> "rowa-async" in
      let outcome = Fuzz.run ~check_regular builder s in
      Alcotest.(check (list string))
        (builder.Registry.name ^ ": no violations under amnesia storm")
        [] outcome.Fuzz.violations;
      Alcotest.(check bool)
        (builder.Registry.name ^ ": recovery exercised")
        true
        (outcome.Fuzz.recoveries_started >= 1);
      total_done := !total_done + outcome.Fuzz.recoveries_done;
      total_bytes := !total_bytes + outcome.Fuzz.sync_bytes)
    Registry.paper_five;
  Alcotest.(check bool) "state transfers completed" true (!total_done >= 1);
  Alcotest.(check bool) "non-zero sync bytes moved" true (!total_bytes > 0)

let () =
  Alcotest.run "recovery"
    [
      ( "amnesia",
        [
          Alcotest.test_case "timer incarnation guard" `Quick test_timer_guard_survives_amnesia;
          Alcotest.test_case "wiped IQS serves nothing until synced" `Quick
            test_wiped_iqs_serves_nothing_until_synced;
          Alcotest.test_case "mid-QRPC amnesia recovery" `Quick test_mid_qrpc_amnesia_recovery;
          Alcotest.test_case "OQS lease re-acquisition" `Quick test_oqs_reacquires_after_wipe;
          Alcotest.test_case "amnesia storms, five protocols" `Quick
            test_amnesia_storm_all_protocols;
        ] );
    ]
