module H = Dq_sim.Event_heap

let drain h =
  let rec go acc = match H.pop h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let heap_of entries =
  let h = H.create ~dummy:(-1) in
  List.iter (fun ((time, seq), payload) -> H.push h ~time ~seq payload) entries;
  h

let test_empty () =
  let h = H.create ~dummy:0 in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  Alcotest.(check int) "size" 0 (H.size h);
  Alcotest.(check (option int)) "peek" None (H.peek h);
  Alcotest.(check (option int)) "pop" None (H.pop h)

let test_time_order () =
  let h = heap_of [ ((5., 0), 50); ((1., 1), 10); ((4., 2), 40); ((2., 3), 20) ] in
  Alcotest.(check (list int)) "ascending time" [ 10; 20; 40; 50 ] (drain h)

let test_ties_broken_by_seq () =
  let h = heap_of [ ((1., 3), 3); ((1., 1), 1); ((1., 2), 2); ((0., 9), 0) ] in
  Alcotest.(check (list int)) "seq order within a tie" [ 0; 1; 2; 3 ] (drain h)

let test_peek_does_not_remove () =
  let h = heap_of [ ((2., 0), 9) ] in
  Alcotest.(check (option int)) "peek" (Some 9) (H.peek h);
  Alcotest.(check int) "size unchanged" 1 (H.size h)

let test_interleaved () =
  let h = H.create ~dummy:(-1) in
  H.push h ~time:3. ~seq:0 3;
  H.push h ~time:1. ~seq:1 1;
  Alcotest.(check (option int)) "pop 1" (Some 1) (H.pop h);
  H.push h ~time:0.5 ~seq:2 0;
  H.push h ~time:2. ~seq:3 2;
  Alcotest.(check (option int)) "pop 0" (Some 0) (H.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (H.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (H.pop h);
  Alcotest.(check (option int)) "drained" None (H.pop h)

(* Reference model: sorting the (time, seq) keys. Payload is the input
   position so we can see exactly which entry came out. *)
let prop_pop_order_matches_sorted_model =
  QCheck.Test.make ~name:"pop order matches sorted reference, ties by seq" ~count:500
    QCheck.(list (pair (int_range 0 20) small_nat))
    (fun raw ->
      (* Distinct seqs (the engine guarantees this); coarse times force
         plenty of ties. *)
      let entries =
        List.mapi (fun seq (t, _) -> ((float_of_int t /. 4., seq), seq)) raw
      in
      let expected =
        List.sort
          (fun ((t1, s1), _) ((t2, s2), _) ->
            let c = Float.compare t1 t2 in
            if c <> 0 then c else Int.compare s1 s2)
          entries
        |> List.map snd
      in
      drain (heap_of entries) = expected)

let prop_size_tracks =
  QCheck.Test.make ~name:"size tracks pushes and pops" ~count:200
    QCheck.(list (int_range 0 100))
    (fun xs ->
      let h = H.create ~dummy:(-1) in
      List.iteri (fun seq x -> H.push h ~time:(float_of_int x) ~seq seq) xs;
      let n = List.length xs in
      let ok = ref (H.size h = n) in
      let rec pop_all k =
        match H.pop h with
        | None -> if k <> 0 then ok := false
        | Some _ ->
          if H.size h <> k - 1 then ok := false;
          pop_all (k - 1)
      in
      pop_all n;
      !ok)

let () =
  Alcotest.run "event_heap"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "time order" `Quick test_time_order;
          Alcotest.test_case "ties broken by seq" `Quick test_ties_broken_by_seq;
          Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pop_order_matches_sorted_model; prop_size_tracks ] );
    ]
