module Pool = Dq_par.Pool

(* --- chunking ----------------------------------------------------------- *)

let test_chunk_ranges_basic () =
  Alcotest.(check (list (pair int int)))
    "n=10 size=4"
    [ (0, 4); (4, 4); (8, 2) ]
    (Pool.chunk_ranges ~n:10 ~chunk_size:4);
  Alcotest.(check (list (pair int int))) "n=0" [] (Pool.chunk_ranges ~n:0 ~chunk_size:3);
  Alcotest.(check (list (pair int int)))
    "size > n" [ (0, 2) ]
    (Pool.chunk_ranges ~n:2 ~chunk_size:100);
  Alcotest.check_raises "n < 0" (Invalid_argument "Pool.chunk_ranges: n < 0") (fun () ->
      ignore (Pool.chunk_ranges ~n:(-1) ~chunk_size:1));
  Alcotest.check_raises "chunk_size < 1"
    (Invalid_argument "Pool.chunk_ranges: chunk_size < 1") (fun () ->
      ignore (Pool.chunk_ranges ~n:4 ~chunk_size:0))

let prop_chunks_cover_exactly_once =
  QCheck.Test.make ~name:"chunk_ranges covers every index exactly once" ~count:500
    QCheck.(pair (int_range 0 300) (int_range 1 20))
    (fun (n, chunk_size) ->
      let covered =
        Pool.chunk_ranges ~n ~chunk_size
        |> List.concat_map (fun (start, len) -> List.init len (fun i -> start + i))
      in
      covered = List.init n Fun.id)

(* --- parallel map ------------------------------------------------------- *)

let test_ordering_preserved () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let input = List.init 101 (fun i -> i) in
          let expected = List.map (fun i -> i * i) input in
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d" jobs)
            expected
            (Pool.map pool (fun i -> i * i) input);
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d chunked" jobs)
            expected
            (Pool.map ~chunk_size:7 pool (fun i -> i * i) input)))
    [ 1; 2; 4 ]

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool Fun.id []);
      Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map pool (fun x -> x + 1) [ 6 ]))

let test_exception_reraised () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "worker exception reaches the caller" (Failure "boom 13")
        (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i = 13 then failwith (Printf.sprintf "boom %d" i) else i)
               (List.init 50 Fun.id))))

let test_first_failing_chunk_wins () =
  (* Two failures: the one in the lowest-indexed chunk is re-raised,
     regardless of which worker hit its chunk first. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "lowest chunk's exception" (Failure "boom 3") (fun () ->
          ignore
            (Pool.map pool
               (fun i ->
                 if i = 3 || i = 47 then failwith (Printf.sprintf "boom %d" i) else i)
               (List.init 50 Fun.id))))

let test_pool_reusable_after_error () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (try ignore (Pool.map pool (fun _ -> failwith "die") (List.init 20 Fun.id))
       with Failure _ -> ());
      let input = List.init 40 Fun.id in
      Alcotest.(check (list int))
        "map after error" (List.map succ input)
        (Pool.map pool succ input))

let test_reentrant_map_falls_back_serial () =
  (* A map issued from inside a running map (worker or caller domain) must
     not deadlock; it degrades to a serial map with the same result. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let result =
        Pool.map pool
          (fun i -> List.fold_left ( + ) 0 (Pool.map pool Fun.id [ i; i; i ]))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "nested" [ 3; 6; 9; 12 ] result)

let test_default_jobs_env () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let prop_map_matches_list_map =
  QCheck.Test.make ~name:"map equals List.map for any jobs/chunking" ~count:100
    QCheck.(triple (list small_int) (int_range 1 5) (int_range 1 8))
    (fun (xs, jobs, chunk_size) ->
      Pool.with_pool ~jobs (fun pool ->
          Pool.map ~chunk_size pool (fun x -> (2 * x) - 1) xs
          = List.map (fun x -> (2 * x) - 1) xs))

let () =
  Alcotest.run "par"
    [
      ( "chunking",
        [
          Alcotest.test_case "ranges" `Quick test_chunk_ranges_basic;
          QCheck_alcotest.to_alcotest prop_chunks_cover_exactly_once;
        ] );
      ( "map",
        [
          Alcotest.test_case "ordering preserved" `Quick test_ordering_preserved;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception re-raised" `Quick test_exception_reraised;
          Alcotest.test_case "first failing chunk wins" `Quick test_first_failing_chunk_wins;
          Alcotest.test_case "pool reusable after error" `Quick test_pool_reusable_after_error;
          Alcotest.test_case "re-entrant map is serial" `Quick
            test_reentrant_map_falls_back_serial;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_env;
          QCheck_alcotest.to_alcotest prop_map_matches_list_map;
        ] );
    ]
